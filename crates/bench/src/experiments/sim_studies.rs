//! Experiments driven by the discrete-event simulator (and, for garbage collection, the raw
//! protocol state): Figures 4, 5, 6 and 11 plus the Appendix F GC check.

use legostore_cloud::{CloudModel, GcpLocation};
use legostore_optimizer::latency::{get_latency_ms, put_latency_ms};
use legostore_optimizer::search::{Optimizer, ProtocolFilter};
use legostore_proto::cas::CasKeyState;
use legostore_proto::msg::ProtoMsg;
use legostore_sim::{LatencySummary, SimOptions, SimReport, Simulation};
use legostore_types::{ClientId, Configuration, DcId, OpKind, Tag, Value};
use legostore_workload::{client_distribution, ClientDistribution, TraceGenerator, WorkloadSpec};

fn loc(l: GcpLocation) -> DcId {
    l.dc()
}

/// The CAS(5,3) placement used by the Figure 4 experiment (Singapore, Frankfurt, Virginia,
/// Los Angeles, Oregon — the paper's "California" is the Los Angeles region).
pub fn fig4_placement() -> Configuration {
    Configuration::cas_default(
        vec![
            loc(GcpLocation::Singapore),
            loc(GcpLocation::Frankfurt),
            loc(GcpLocation::Virginia),
            loc(GcpLocation::LosAngeles),
            loc(GcpLocation::Oregon),
        ],
        3,
        1,
    )
}

/// One point of Figure 4: latency statistics for clients in Tokyo at a given arrival rate.
#[derive(Debug, Clone)]
pub struct ConcurrencyPoint {
    /// Aggregate arrival rate to the single key (req/s).
    pub arrival_rate: f64,
    /// GET latency summary (Tokyo clients).
    pub get: LatencySummary,
    /// PUT latency summary (Tokyo clients).
    pub put: LatencySummary,
}

/// Figure 4: a single 1 KB key configured as CAS(5,3); requests arrive from uniformly
/// distributed user locations at increasing rates; we report the latency experienced by the
/// Tokyo clients. `read_ratio` is 0.5 for panel (a) (RW) and 1/31 for panel (b) (HW).
pub fn concurrency_robustness(
    rates: &[f64],
    read_ratio: f64,
    duration_ms: f64,
    seed: u64,
) -> Vec<ConcurrencyPoint> {
    let model = CloudModel::gcp9();
    let config = fig4_placement();
    let mut out = Vec::new();
    for &rate in rates {
        let mut spec = WorkloadSpec::example();
        spec.arrival_rate = rate;
        spec.read_ratio = read_ratio;
        spec.object_size = 1024;
        spec.client_distribution = client_distribution(ClientDistribution::Uniform, &model);
        let mut gen = TraceGenerator::new(spec, 1, seed);
        let trace = gen.generate(duration_ms);
        let mut sim = Simulation::new(model.clone());
        sim.create_key("hot", config.clone(), &Value::filler(1024));
        sim.schedule_trace(&trace, 0.0, |_| "hot".to_string());
        let report = sim.run();
        let tokyo = loc(GcpLocation::Tokyo);
        out.push(ConcurrencyPoint {
            arrival_rate: rate,
            get: report.latency(Some(OpKind::Get), Some(tokyo), None, None),
            put: report.latency(Some(OpKind::Put), Some(tokyo), None, None),
        });
    }
    out
}

/// Renders Figure 4's series.
pub fn render_concurrency(points: &[ConcurrencyPoint]) -> String {
    let mut out =
        String::from("Figure 4: Tokyo-client latency vs arrival rate (CAS(5,3), 1 KB key)\n");
    out.push_str("rate | GET avg | GET p99 | PUT avg | PUT p99\n");
    for p in points {
        out.push_str(&format!(
            "{:4.0} | {:7.1} | {:7.1} | {:7.1} | {:7.1}\n",
            p.arrival_rate, p.get.mean_ms, p.get.p99_ms, p.put.mean_ms, p.put.p99_ms
        ));
    }
    out
}

/// Result of the Figure 5 scenario.
#[derive(Debug, Clone)]
pub struct ReconfigScenarioResult {
    /// The full simulator report.
    pub report: SimReport,
    /// End of the low-rate phase (ms).
    pub load_change_ms: f64,
    /// Time the Singapore DC fails (ms).
    pub failure_ms: f64,
    /// Time of the second reconfiguration (ms).
    pub second_reconfig_ms: f64,
    /// Number of keys.
    pub keys: usize,
}

/// Figure 5: 20 keys configured as CAS(5,3) with clients in Tokyo/Sydney/Singapore/Frankfurt
/// (30/30/30/10%). The arrival rate quadruples at `load_change_ms` (triggering a
/// reconfiguration to ABD(3)), Singapore fails at `failure_ms`, and a second
/// reconfiguration to CAS(4,2) happens at `second_reconfig_ms`. Durations are parameters so
/// tests and benches can run a compressed timeline.
pub fn reconfiguration_scenario(
    keys: usize,
    load_change_ms: f64,
    failure_ms: f64,
    second_reconfig_ms: f64,
    end_ms: f64,
    base_rate: f64,
    seed: u64,
) -> ReconfigScenarioResult {
    let model = CloudModel::gcp9();
    let old_config = Configuration::cas_default(
        vec![
            loc(GcpLocation::Tokyo),
            loc(GcpLocation::Sydney),
            loc(GcpLocation::Singapore),
            loc(GcpLocation::Virginia),
            loc(GcpLocation::Oregon),
        ],
        3,
        1,
    );
    let abd_config = Configuration::abd_majority(
        vec![
            loc(GcpLocation::Tokyo),
            loc(GcpLocation::Sydney),
            loc(GcpLocation::Singapore),
        ],
        1,
    );
    let final_config = Configuration::cas_default(
        vec![
            loc(GcpLocation::Tokyo),
            loc(GcpLocation::Sydney),
            loc(GcpLocation::Virginia),
            loc(GcpLocation::Oregon),
        ],
        2,
        1,
    );
    let clients = vec![
        (loc(GcpLocation::Tokyo), 0.3),
        (loc(GcpLocation::Sydney), 0.3),
        (loc(GcpLocation::Singapore), 0.3),
        (loc(GcpLocation::Frankfurt), 0.1),
    ];
    let mut spec = WorkloadSpec::example();
    spec.object_size = 1024;
    spec.read_ratio = 0.5;
    spec.client_distribution = clients;
    spec.slo_get_ms = 700.0;
    spec.slo_put_ms = 800.0;

    let mut sim = Simulation::with_options(
        model.clone(),
        SimOptions {
            controller_dc: loc(GcpLocation::LosAngeles),
            ..Default::default()
        },
    );
    for i in 0..keys {
        sim.create_key(format!("key-{i}"), old_config.clone(), &Value::filler(1024));
    }
    // Phase 1: base rate until the load change.
    let mut gen = TraceGenerator::new(spec.with_arrival_rate(base_rate), keys, seed);
    sim.schedule_trace(&gen.generate(load_change_ms), 0.0, |i| format!("key-{i}"));
    // Phase 2: four-fold rate until the end.
    let mut gen = TraceGenerator::new(spec.with_arrival_rate(base_rate * 4.0), keys, seed ^ 1);
    sim.schedule_trace(
        &gen.generate(end_ms - load_change_ms),
        load_change_ms,
        |i| format!("key-{i}"),
    );
    // The controller reacts to the load change and to the failure.
    for i in 0..keys {
        sim.schedule_reconfig(load_change_ms + 50.0, format!("key-{i}"), abd_config.clone());
        sim.schedule_reconfig(second_reconfig_ms, format!("key-{i}"), final_config.clone());
    }
    sim.schedule_failure(failure_ms, loc(GcpLocation::Singapore));
    let report = sim.run();
    ReconfigScenarioResult {
        report,
        load_change_ms,
        failure_ms,
        second_reconfig_ms,
        keys,
    }
}

impl ReconfigScenarioResult {
    /// Latency summary for one client location over a time window.
    pub fn window(&self, origin: GcpLocation, from_ms: f64, to_ms: f64) -> LatencySummary {
        self.report
            .latency(None, Some(loc(origin)), Some(from_ms), Some(to_ms))
    }

    /// Text rendering of the timeline.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 5: {} keys, reconfig at {} ms (CAS(5,3) -> ABD(3)), Singapore fails at {} ms, reconfig at {} ms (-> CAS(4,2))\n",
            self.keys, self.load_change_ms, self.failure_ms, self.second_reconfig_ms
        );
        let phases = [
            ("before load change", 0.0, self.load_change_ms),
            ("after 4x load", self.load_change_ms, self.failure_ms),
            ("after DC failure", self.failure_ms, self.second_reconfig_ms),
            ("after 2nd reconfig", self.second_reconfig_ms, f64::INFINITY),
        ];
        for origin in [GcpLocation::Sydney, GcpLocation::Frankfurt] {
            out.push_str(&format!("{:?} clients:\n", origin));
            for (label, from, to) in phases {
                let s = self.window(origin, from, to);
                out.push_str(&format!(
                    "  {label:20} count={:4} avg={:6.1} ms p99={:6.1} ms\n",
                    s.count, s.mean_ms, s.p99_ms
                ));
            }
        }
        out.push_str(&format!(
            "reconfigurations completed: {} (durations ms: {:?})\n",
            self.report.reconfig_durations_ms.len(),
            self.report
                .reconfig_durations_ms
                .iter()
                .map(|d| d.round())
                .collect::<Vec<_>>()
        ));
        out.push_str(&format!(
            "operations: {} total, {} failed, {} reconfig-retried, optimized GET fraction {:.2}\n",
            self.report.operations.len(),
            self.report.failures(),
            self.report.operations.iter().filter(|o| o.reconfig_retries > 0).count(),
            self.report.optimized_get_fraction()
        ));
        out
    }
}

/// Result of the Figure 6 scenario (Wikipedia hot key, T1 → T2 epoch change).
#[derive(Debug, Clone)]
pub struct WikipediaKeyResult {
    /// The simulator report.
    pub report: SimReport,
    /// Time of the reconfiguration (ms).
    pub reconfig_at_ms: f64,
}

/// Figure 6: the hottest Wikipedia-derived key served as CAS(5,1) in T1 and reconfigured to
/// CAS(8,1) when the epoch (client spread + arrival rate) changes.
pub fn wikipedia_key_scenario(epoch_ms: f64, seed: u64) -> WikipediaKeyResult {
    let model = CloudModel::gcp9();
    let t1_config = Configuration::cas_default(
        vec![
            loc(GcpLocation::Tokyo),
            loc(GcpLocation::Sydney),
            loc(GcpLocation::Singapore),
            loc(GcpLocation::Frankfurt),
            loc(GcpLocation::London),
        ],
        1,
        1,
    );
    let t2_config = Configuration::cas_default(
        vec![
            loc(GcpLocation::Tokyo),
            loc(GcpLocation::Sydney),
            loc(GcpLocation::Singapore),
            loc(GcpLocation::Frankfurt),
            loc(GcpLocation::London),
            loc(GcpLocation::Virginia),
            loc(GcpLocation::LosAngeles),
            loc(GcpLocation::Oregon),
        ],
        1,
        1,
    );
    let mut t1_spec = WorkloadSpec::example();
    t1_spec.object_size = 20 * 1024;
    t1_spec.read_ratio = 0.97;
    t1_spec.arrival_rate = 16.0;
    t1_spec.client_distribution = [
        GcpLocation::Tokyo,
        GcpLocation::Sydney,
        GcpLocation::Singapore,
        GcpLocation::Frankfurt,
        GcpLocation::London,
    ]
    .iter()
    .map(|l| (loc(*l), 0.2))
    .collect();
    let t2_spec = t1_spec
        .with_arrival_rate(35.0)
        .with_clients(client_distribution(ClientDistribution::Uniform, &model));

    let mut sim = Simulation::with_options(
        model,
        SimOptions {
            controller_dc: loc(GcpLocation::LosAngeles),
            ..Default::default()
        },
    );
    sim.create_key("wiki-hot", t1_config, &Value::filler(20 * 1024));
    let mut gen = TraceGenerator::new(t1_spec, 1, seed);
    sim.schedule_trace(&gen.generate(epoch_ms), 0.0, |_| "wiki-hot".to_string());
    let mut gen = TraceGenerator::new(t2_spec, 1, seed ^ 7);
    sim.schedule_trace(&gen.generate(epoch_ms), epoch_ms, |_| "wiki-hot".to_string());
    sim.schedule_reconfig(epoch_ms, "wiki-hot", t2_config);
    WikipediaKeyResult {
        report: sim.run(),
        reconfig_at_ms: epoch_ms,
    }
}

impl WikipediaKeyResult {
    /// Renders before/after latency summaries for Sydney and Frankfurt users (the locations
    /// Figure 6 plots).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 6: Wikipedia hot key, reconfiguration CAS(5,1) -> CAS(8,1) at {} ms\n",
            self.reconfig_at_ms
        );
        for origin in [GcpLocation::Sydney, GcpLocation::Frankfurt] {
            let before =
                self.report
                    .latency(Some(OpKind::Get), Some(loc(origin)), None, Some(self.reconfig_at_ms));
            let after = self.report.latency(
                Some(OpKind::Get),
                Some(loc(origin)),
                Some(self.reconfig_at_ms),
                None,
            );
            out.push_str(&format!(
                "{:?} GETs: before avg={:.0} ms p99={:.0} ms ({} ops); after avg={:.0} ms p99={:.0} ms ({} ops)\n",
                origin, before.mean_ms, before.p99_ms, before.count, after.mean_ms, after.p99_ms, after.count
            ));
        }
        out.push_str(&format!(
            "reconfiguration durations (ms): {:?}; SLO(750 ms) violations: {}\n",
            self.report
                .reconfig_durations_ms
                .iter()
                .map(|d| d.round())
                .collect::<Vec<_>>(),
            self.report.slo_violations(750.0, None)
        ));
        out
    }
}

/// One row of Figure 11: predicted vs measured latency at a user location, with and without
/// the Los Angeles DC failed.
#[derive(Debug, Clone)]
pub struct ModelValidationRow {
    /// User location.
    pub location: &'static str,
    /// Predicted GET / PUT latency from the optimizer's worst-case model (ms).
    pub predicted_get_ms: f64,
    /// Predicted PUT latency (ms).
    pub predicted_put_ms: f64,
    /// Measured GET latency (mean / p99, ms) in the failure-free run.
    pub measured_get: LatencySummary,
    /// Measured PUT latency in the failure-free run.
    pub measured_put: LatencySummary,
    /// Measured GET latency with the Los Angeles DC failed.
    pub failure_get: LatencySummary,
    /// Measured PUT latency with the Los Angeles DC failed.
    pub failure_put: LatencySummary,
}

/// Figure 11: uniform client distribution, 1 KB objects, HW mix, 1 s SLO, f = 1. The
/// optimizer picks the configuration (CAS(4,2) in the paper); we compare its predicted
/// worst-case latencies against simulator measurements per user location, then repeat with
/// the Los Angeles server failed.
pub fn model_validation(duration_ms: f64, rate: f64, seed: u64) -> Vec<ModelValidationRow> {
    let model = CloudModel::gcp9();
    let mut spec = WorkloadSpec::example();
    spec.object_size = 1024;
    spec.read_ratio = 1.0 / 31.0;
    spec.arrival_rate = rate;
    spec.client_distribution = client_distribution(ClientDistribution::Uniform, &model);
    spec.slo_get_ms = 1000.0;
    spec.slo_put_ms = 1000.0;
    let plan = Optimizer::new(model.clone())
        .optimize_filtered(&spec, ProtocolFilter::CasOnly)
        .expect("CAS feasible at 1 s for the uniform workload");
    let config = plan.config.clone();

    let run = |fail_la: bool| -> SimReport {
        let mut sim = Simulation::new(model.clone());
        sim.create_key("k", config.clone(), &Value::filler(1024));
        if fail_la {
            sim.schedule_failure(0.0, loc(GcpLocation::LosAngeles));
        }
        let mut gen = TraceGenerator::new(spec.clone(), 1, seed);
        sim.schedule_trace(&gen.generate(duration_ms), 0.0, |_| "k".to_string());
        sim.run()
    };
    let healthy = run(false);
    let degraded = run(true);

    GcpLocation::ALL
        .iter()
        .map(|l| {
            let dc = loc(*l);
            ModelValidationRow {
                location: l.name(),
                predicted_get_ms: get_latency_ms(&model, &spec, &config, dc),
                predicted_put_ms: put_latency_ms(&model, &spec, &config, dc),
                measured_get: healthy.latency(Some(OpKind::Get), Some(dc), None, None),
                measured_put: healthy.latency(Some(OpKind::Put), Some(dc), None, None),
                failure_get: degraded.latency(Some(OpKind::Get), Some(dc), None, None),
                failure_put: degraded.latency(Some(OpKind::Put), Some(dc), None, None),
            }
        })
        .collect()
}

/// Renders the Figure 11 comparison table.
pub fn render_model_validation(rows: &[ModelValidationRow]) -> String {
    let mut out = String::from(
        "Figure 11: predicted vs measured latency per user location (and under LA failure)\n",
    );
    out.push_str("location    | pred GET | meas GET avg/p99 | fail GET avg/p99 | pred PUT | meas PUT avg/p99 | fail PUT avg/p99\n");
    for r in rows {
        out.push_str(&format!(
            "{:12}| {:8.0} | {:7.0}/{:7.0}  | {:7.0}/{:7.0}  | {:8.0} | {:7.0}/{:7.0}  | {:7.0}/{:7.0}\n",
            r.location,
            r.predicted_get_ms,
            r.measured_get.mean_ms,
            r.measured_get.p99_ms,
            r.failure_get.mean_ms,
            r.failure_get.p99_ms,
            r.predicted_put_ms,
            r.measured_put.mean_ms,
            r.measured_put.p99_ms,
            r.failure_put.mean_ms,
            r.failure_put.p99_ms,
        ));
    }
    out
}

/// Appendix F: the storage overhead of keeping CAS version history, with and without
/// garbage collection. Returns (versions without GC, bytes without GC, versions with GC,
/// bytes with GC) after `puts` sequential writes of `object_bytes` each.
pub fn gc_overhead(puts: usize, object_bytes: usize, gc_every: usize) -> (usize, u64, usize, u64) {
    let shard = legostore_erasure::encode_value(&vec![7u8; object_bytes], 5, 3)
        .unwrap()
        .remove(0)
        .data;
    let run = |gc: bool| -> (usize, u64) {
        let mut state = CasKeyState::new(Tag::INITIAL, Some(shard.clone()));
        for i in 1..=puts {
            let tag = Tag::new(i as u64, ClientId(1));
            state.handle(&ProtoMsg::CasPreWrite { tag, shard: shard.clone() });
            state.handle(&ProtoMsg::CasFinalizeWrite { tag });
            if gc && i % gc_every == 0 {
                state.garbage_collect(1);
            }
        }
        if gc {
            state.garbage_collect(1);
        }
        (state.version_count(), state.storage_bytes())
    };
    let (v_no, b_no) = run(false);
    let (v_gc, b_gc) = run(true);
    (v_no, b_no, v_gc, b_gc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_latency_is_flat_in_arrival_rate() {
        let points = concurrency_robustness(&[20.0, 60.0], 0.5, 20_000.0, 3);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.get.count > 10);
            assert!(p.put.count > 10);
            assert!(p.get.count + p.put.count > 30);
            // CAS PUT (3 phases) is slower than GET (2 phases).
            assert!(p.put.mean_ms > p.get.mean_ms);
        }
        // Robustness: mean latency changes by less than 15% across a 3x rate increase.
        let rel = (points[1].put.mean_ms - points[0].put.mean_ms).abs() / points[0].put.mean_ms;
        assert!(rel < 0.15, "relative change {rel}");
        assert!(!render_concurrency(&points).is_empty());
    }

    #[test]
    fn fig5_scenario_compressed_timeline() {
        let result = reconfiguration_scenario(3, 4_000.0, 8_000.0, 10_000.0, 14_000.0, 30.0, 5);
        // Two reconfigurations per key.
        assert_eq!(result.report.reconfig_durations_ms.len(), 6);
        for d in &result.report.reconfig_durations_ms {
            assert!(*d < 1500.0, "reconfig took {d} ms");
        }
        // No operation is lost across load change, reconfigurations and the DC failure.
        assert_eq!(result.report.failures(), 0);
        assert!(result.report.operations.len() > 200);
        assert!(result.render().contains("reconfigurations completed"));
    }

    #[test]
    fn fig6_scenario_smoke() {
        let result = wikipedia_key_scenario(5_000.0, 11);
        assert_eq!(result.report.reconfig_durations_ms.len(), 1);
        assert_eq!(result.report.failures(), 0);
        assert!(result.render().contains("Figure 6"));
    }

    #[test]
    fn fig11_predictions_bound_measurements() {
        let rows = model_validation(5_000.0, 30.0, 1);
        assert_eq!(rows.len(), 9);
        for r in rows {
            if r.measured_put.count > 5 {
                // The worst-case model must upper-bound the failure-free mean latency
                // (allowing a small tolerance for the optimized-GET fast path variance).
                assert!(
                    r.measured_put.mean_ms <= r.predicted_put_ms + 25.0,
                    "{}: measured {} vs predicted {}",
                    r.location,
                    r.measured_put.mean_ms,
                    r.predicted_put_ms
                );
            }
        }
    }

    #[test]
    fn gc_keeps_storage_bounded() {
        let (v_no, b_no, v_gc, b_gc) = gc_overhead(200, 3000, 10);
        assert_eq!(v_no, 201);
        assert!(v_gc <= 3);
        assert!(b_gc < b_no / 10);
    }
}
