//! Experiments driven purely by the optimizer and its cost model: Table 3, Figures 1–3,
//! 12–15, the Kopt analytical model and the §4.2.5 EC-vs-replication latency study.

use legostore_cloud::{CloudModel, GcpLocation};
use legostore_optimizer::analytic::coarse_comparison;
use legostore_optimizer::baselines::{evaluate_baseline, Baseline};
use legostore_optimizer::cost::CostBreakdown;
use legostore_optimizer::plan::Plan;
use legostore_optimizer::search::{Objective, Optimizer, ProtocolFilter, SearchOptions};
use legostore_optimizer::AnalyticModel;
use legostore_types::DcId;
use legostore_workload::{
    basic_workloads, client_distribution, synthesize_wikipedia, ClientDistribution, ReadRatio,
    WorkloadSpec,
};

/// Builds a workload spec against the gcp9 model with the given knobs.
#[allow(clippy::too_many_arguments)] // mirrors the paper's workload-feature vector
pub fn spec(
    model: &CloudModel,
    dist: ClientDistribution,
    object_size: u64,
    read_ratio: f64,
    arrival_rate: f64,
    total_data_bytes: u64,
    slo_ms: f64,
    f: usize,
) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("{}-{}B-{}rps", dist.label(), object_size, arrival_rate),
        object_size,
        metadata_size: legostore_cloud::METADATA_BYTES,
        read_ratio,
        arrival_rate,
        total_data_bytes,
        client_distribution: client_distribution(dist, model),
        slo_get_ms: slo_ms,
        slo_put_ms: slo_ms,
        fault_tolerance: f,
    }
}

// ---------------------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------------------

/// Renders Table 3 (coarse ABD vs CAS comparison) for the paper's canonical parameters.
pub fn table3(value_bytes: u64) -> String {
    let (cas, abd) = coarse_comparison(5, 3, value_bytes);
    let (cas31, _) = coarse_comparison(3, 1, value_bytes);
    let mut out = String::new();
    out.push_str(&format!(
        "Table 3: coarse per-operation comparison (B = {value_bytes} bytes)\n"
    ));
    out.push_str("system      | PUT cost (B) | PUT rounds | GET cost (B) | GET rounds | storage/server (B)\n");
    out.push_str(&format!(
        "CAS(5,3)    | {:12.0} | {:10} | {:12.0} | {:10} | {:14.0}\n",
        cas.put_cost_bytes, cas.put_latency_rounds, cas.get_cost_bytes, cas.get_latency_rounds, cas.storage_per_server_bytes
    ));
    out.push_str(&format!(
        "CAS(3,1)    | {:12.0} | {:10} | {:12.0} | {:10} | {:14.0}\n",
        cas31.put_cost_bytes, cas31.put_latency_rounds, cas31.get_cost_bytes, cas31.get_latency_rounds, cas31.storage_per_server_bytes
    ));
    out.push_str(&format!(
        "ABD(3)      | {:12.0} | {:10} | {:12.0} | {:10} | {:14.0}\n",
        abd.put_cost_bytes * 3.0 / 5.0, // ABD at N=3
        abd.put_latency_rounds,
        (3.0 - 1.0) * value_bytes as f64,
        abd.get_latency_rounds,
        abd.storage_per_server_bytes
    ));
    out
}

/// Renders Tables 1 and 2 (the embedded GCP price and RTT data).
pub fn table_inputs() -> String {
    let model = CloudModel::gcp9();
    let mut out = String::new();
    out.push_str("Table 1: storage ($/GB-month) and VM ($/hour) prices\n");
    for dc in model.dcs() {
        out.push_str(&format!(
            "{:12} storage={:.3} vm={:.4}\n",
            dc.name, dc.storage_price_gb_month, dc.vm_price_hour
        ));
    }
    out.push_str("\nTable 2: RTT (ms) / network price ($/GB), row = source, column = destination\n");
    for i in model.dc_ids() {
        let row: Vec<String> = model
            .dc_ids()
            .iter()
            .map(|j| format!("{:3.0}/{:.2}", model.rtt_ms(i, *j), model.net_price_gb(i, *j)))
            .collect();
        out.push_str(&format!("{:12} {}\n", model.dc(i).name, row.join(" ")));
    }
    out
}

// ---------------------------------------------------------------------------------------
// Figures 1 and 12: baseline normalized-cost CDFs over the basic workload grid
// ---------------------------------------------------------------------------------------

/// Result of the Figure 1 / Figure 12 style experiments.
#[derive(Debug, Clone)]
pub struct BaselineCdf {
    /// Latency SLO used for both GETs and PUTs (ms).
    pub slo_ms: f64,
    /// Fault tolerance.
    pub f: usize,
    /// Number of workloads evaluated.
    pub workloads: usize,
    /// For each baseline: the normalized costs (baseline / optimizer) of the workloads where
    /// the baseline was feasible.
    pub normalized: Vec<(Baseline, Vec<f64>)>,
}

impl BaselineCdf {
    /// Number of workloads for which `baseline` met the SLO.
    pub fn feasible(&self, baseline: Baseline) -> usize {
        self.normalized
            .iter()
            .find(|(b, _)| *b == baseline)
            .map(|(_, v)| v.len())
            .unwrap_or(0)
    }

    /// Median normalized cost of `baseline` (1.0 means it matches the optimizer).
    pub fn median(&self, baseline: Baseline) -> f64 {
        let mut v = self
            .normalized
            .iter()
            .find(|(b, _)| *b == baseline)
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    /// Cumulative count of workloads whose normalized cost is at most `x`.
    pub fn cumulative_at(&self, baseline: Baseline, x: f64) -> usize {
        self.normalized
            .iter()
            .find(|(b, _)| *b == baseline)
            .map(|(_, v)| v.iter().filter(|c| **c <= x + 1e-9).count())
            .unwrap_or(0)
    }

    /// Text rendering: the cumulative counts at a few normalized-cost thresholds.
    pub fn render(&self) -> String {
        let thresholds = [1.0, 1.2, 1.5, 2.0, 2.5, 3.0, 4.0];
        let mut out = format!(
            "Figure 1-style CDF: {} workloads, SLO = {} ms, f = {}\n",
            self.workloads, self.slo_ms, self.f
        );
        out.push_str("baseline          | feasible | median |");
        for t in thresholds {
            out.push_str(&format!(" <={t:>4} |"));
        }
        out.push('\n');
        for (b, _) in &self.normalized {
            out.push_str(&format!(
                "{:18}| {:8} | {:6.2} |",
                b.label(),
                self.feasible(*b),
                self.median(*b)
            ));
            for t in thresholds {
                out.push_str(&format!(" {:5} |", self.cumulative_at(*b, t)));
            }
            out.push('\n');
        }
        out
    }
}

/// Figure 1 (f=1) / Figure 12 (f=2): evaluates the optimizer and every baseline over the
/// basic workload grid and normalizes baseline costs by the optimizer's.
///
/// `stride` subsamples the 567-workload grid (1 = full grid); benches use larger strides.
pub fn baseline_cdf(slo_ms: f64, f: usize, stride: usize) -> BaselineCdf {
    let model = CloudModel::gcp9();
    let grid = basic_workloads(&model, slo_ms, slo_ms, f);
    let optimizer = Optimizer::new(model.clone());
    let mut normalized: Vec<(Baseline, Vec<f64>)> =
        Baseline::ALL.iter().map(|b| (*b, Vec::new())).collect();
    let mut count = 0;
    for w in grid.iter().step_by(stride.max(1)) {
        let Some(optimal) = optimizer.optimize(w) else { continue };
        count += 1;
        for (b, values) in normalized.iter_mut() {
            if let Some(plan) = evaluate_baseline(&model, w, *b) {
                values.push(plan.total_cost() / optimal.total_cost());
            }
        }
    }
    BaselineCdf {
        slo_ms,
        f,
        workloads: count,
        normalized,
    }
}

// ---------------------------------------------------------------------------------------
// Figures 2 and 13: optimizer choice vs latency SLO
// ---------------------------------------------------------------------------------------

/// One cell of the Figure 2 / 13 sensitivity matrix.
#[derive(Debug, Clone)]
pub struct SloChoice {
    /// Object size in bytes.
    pub object_size: u64,
    /// Read-ratio preset label.
    pub read_ratio: &'static str,
    /// Client distribution label.
    pub distribution: &'static str,
    /// Latency SLO in ms.
    pub slo_ms: f64,
    /// The optimizer's choice, e.g. `"ABD(3)"`, `"CAS(5,3)"`, or `"infeasible"`.
    pub choice: String,
}

/// Figure 2 (f=1) / Figure 13 (f=2): the optimizer's protocol choice as the SLO sweeps from
/// stringent to relaxed, for two object sizes, all read ratios and client distributions.
pub fn slo_sensitivity(
    f: usize,
    object_sizes: &[u64],
    slos_ms: &[f64],
    distributions: &[ClientDistribution],
) -> Vec<SloChoice> {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());
    let mut out = Vec::new();
    for &object_size in object_sizes {
        for ratio in ReadRatio::ALL {
            for dist in distributions {
                for &slo in slos_ms {
                    let w = spec(&model, *dist, object_size, ratio.rho(), 500.0, 1 << 40, slo, f);
                    let choice = optimizer
                        .optimize(&w)
                        .map(|p| p.config.describe())
                        .unwrap_or_else(|| "infeasible".to_string());
                    out.push(SloChoice {
                        object_size,
                        read_ratio: ratio.label(),
                        distribution: dist.label(),
                        slo_ms: slo,
                        choice,
                    });
                }
            }
        }
    }
    out
}

/// Renders the SLO-sensitivity matrix grouped by (object size, read ratio, distribution).
pub fn render_slo_sensitivity(rows: &[SloChoice]) -> String {
    let mut out = String::new();
    let mut last_key = String::new();
    for r in rows {
        let key = format!("{}B {} {}", r.object_size, r.read_ratio, r.distribution);
        if key != last_key {
            out.push_str(&format!("\n{key}:\n"));
            last_key = key;
        }
        out.push_str(&format!("  SLO {:>5.0} ms -> {}\n", r.slo_ms, r.choice));
    }
    out
}

// ---------------------------------------------------------------------------------------
// Figure 3: cost vs K, Kopt vs object size, Kopt vs arrival rate
// ---------------------------------------------------------------------------------------

/// Results for the three panels of Figure 3.
#[derive(Debug, Clone)]
pub struct KoptStudy {
    /// (K, cost breakdown) for the fixed Figure 3(a) workload; infeasible Ks are omitted.
    pub cost_vs_k: Vec<(usize, CostBreakdown)>,
    /// (object size, optimal K) for Figure 3(b).
    pub kopt_vs_object_size: Vec<(u64, usize)>,
    /// (arrival rate, optimal K) for Figure 3(c).
    pub kopt_vs_arrival_rate: Vec<(f64, usize)>,
}

fn best_cas_k(model: &CloudModel, w: &WorkloadSpec, max_k: usize) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for k in 1..=max_k {
        let optimizer = Optimizer::with_options(
            model.clone(),
            SearchOptions {
                fixed_k: Some(k),
                ..Default::default()
            },
        );
        if let Some(plan) = optimizer.optimize_filtered(w, ProtocolFilter::CasOnly) {
            let cost = plan.total_cost();
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((k, cost));
            }
        }
    }
    best.map(|(k, _)| k)
}

/// Figure 3: the workload is 1 KB objects, 1 TB datastore, RW mix, users in Sydney and
/// Tokyo, 1 s SLO, f = 1 (arrival rate 200 req/s for panel (a)).
pub fn kopt_study(max_k: usize) -> KoptStudy {
    let model = CloudModel::gcp9();
    let base = spec(
        &model,
        ClientDistribution::SydneyTokyo,
        1024,
        0.5,
        200.0,
        1_000_000_000_000,
        1000.0,
        1,
    );
    // Panel (a): cost vs K.
    let mut cost_vs_k = Vec::new();
    for k in 1..=max_k {
        let optimizer = Optimizer::with_options(
            model.clone(),
            SearchOptions {
                fixed_k: Some(k),
                ..Default::default()
            },
        );
        if let Some(plan) = optimizer.optimize_filtered(&base, ProtocolFilter::CasOnly) {
            cost_vs_k.push((k, plan.cost));
        }
    }
    // Panel (b): Kopt vs object size. The number of stored objects stays fixed (the 1 TB
    // datastore corresponds to ~10^9 objects of 1 KB), so the storage footprint grows with
    // the object size just like the network traffic does.
    let objects = 1_000_000_000u64;
    let mut kopt_vs_object_size = Vec::new();
    for &size in &[256u64, 1024, 4096, 16 * 1024, 64 * 1024] {
        let mut w = base.clone();
        w.object_size = size;
        w.total_data_bytes = size * objects;
        if let Some(k) = best_cas_k(&model, &w, max_k) {
            kopt_vs_object_size.push((size, k));
        }
    }
    // Panel (c): Kopt vs arrival rate.
    let mut kopt_vs_arrival_rate = Vec::new();
    for &rate in &[50.0, 150.0, 250.0, 350.0, 450.0, 550.0] {
        let mut w = base.clone();
        w.arrival_rate = rate;
        if let Some(k) = best_cas_k(&model, &w, max_k) {
            kopt_vs_arrival_rate.push((rate, k));
        }
    }
    KoptStudy {
        cost_vs_k,
        kopt_vs_object_size,
        kopt_vs_arrival_rate,
    }
}

impl KoptStudy {
    /// Text rendering of all three panels.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 3(a): cost ($/h) vs K (Sydney+Tokyo RW, 1KB, 1TB, 200 req/s)\n");
        out.push_str("K | storage |     VM |    PUT |    GET |  total\n");
        for (k, c) in &self.cost_vs_k {
            out.push_str(&format!(
                "{k} | {:7.4} | {:6.4} | {:6.4} | {:6.4} | {:6.4}\n",
                c.storage, c.vm, c.put_network, c.get_network, c.total()
            ));
        }
        out.push_str("\nFigure 3(b): Kopt vs object size\n");
        for (size, k) in &self.kopt_vs_object_size {
            out.push_str(&format!("{size:>7} B -> K = {k}\n"));
        }
        out.push_str("\nFigure 3(c): Kopt vs arrival rate\n");
        for (rate, k) in &self.kopt_vs_arrival_rate {
            out.push_str(&format!("{rate:>5.0} req/s -> K = {k}\n"));
        }
        out
    }
}

/// Validation of the Eq. 4 analytical model against the full optimizer: for a few object
/// sizes, compare the model's `Kopt` with the search's best K.
pub fn kopt_model_validation() -> Vec<(u64, f64, usize)> {
    let model = CloudModel::gcp9();
    let analytic = AnalyticModel::from_cloud(&model).with_footprint(1e12, 1024.0);
    let mut out = Vec::new();
    for &size in &[1024u64, 4096, 16 * 1024] {
        let w = spec(
            &model,
            ClientDistribution::SydneyTokyo,
            size,
            0.5,
            200.0,
            1_000_000_000_000,
            1000.0,
            1,
        );
        let model_k = analytic.k_opt(size as f64, 200.0, 1);
        let search_k = best_cas_k(&model, &w, 7).unwrap_or(0);
        out.push((size, model_k, search_k));
    }
    out
}

// ---------------------------------------------------------------------------------------
// Figure 14 / §G.2: nearest DCs are not always the right choice
// ---------------------------------------------------------------------------------------

/// One bar group of Figure 14(b).
#[derive(Debug, Clone)]
pub struct NearestVsOptimalRow {
    /// System name.
    pub name: String,
    /// The chosen configuration.
    pub config: String,
    /// Cost breakdown ($/hour).
    pub cost: CostBreakdown,
    /// Worst-case GET latency (ms).
    pub get_latency_ms: f64,
    /// Worst-case PUT latency (ms).
    pub put_latency_ms: f64,
}

/// Figure 14: HR workload, 50% Sydney / 50% Tokyo, 1 KB objects, 1 s SLO, f = 1; compares
/// `ABD Nearest`, `CAS Nearest` and the optimizer.
pub fn nearest_vs_optimal() -> Vec<NearestVsOptimalRow> {
    let model = CloudModel::gcp9();
    let w = spec(
        &model,
        ClientDistribution::SydneyTokyo,
        1024,
        30.0 / 31.0,
        500.0,
        1_000_000_000, // 1M objects of 1KB
        1000.0,
        1,
    );
    let mut rows = Vec::new();
    let mut push = |name: &str, plan: Option<Plan>| {
        if let Some(p) = plan {
            rows.push(NearestVsOptimalRow {
                name: name.to_string(),
                config: p.config.describe(),
                cost: p.cost,
                get_latency_ms: p.worst_get_latency_ms,
                put_latency_ms: p.worst_put_latency_ms,
            });
        }
    };
    push("ABD Nearest", evaluate_baseline(&model, &w, Baseline::AbdNearest));
    push("CAS Nearest", evaluate_baseline(&model, &w, Baseline::CasNearest));
    push("Optimizer", Optimizer::new(model.clone()).optimize(&w));
    rows
}

/// Renders the Figure 14 comparison.
pub fn render_nearest_vs_optimal(rows: &[NearestVsOptimalRow]) -> String {
    let mut out = String::from(
        "Figure 14: Sydney+Tokyo HR workload — nearest placements vs the optimizer\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:12} {:10} total={:.3} $/h (GET n/w {:.3}, PUT n/w {:.3}, storage {:.3}, VM {:.3}) GET {:.0} ms PUT {:.0} ms\n",
            r.name,
            r.config,
            r.cost.total(),
            r.cost.get_network,
            r.cost.put_network,
            r.cost.storage,
            r.cost.vm,
            r.get_latency_ms,
            r.put_latency_ms
        ));
    }
    out
}

// ---------------------------------------------------------------------------------------
// §4.2.5: EC at comparable latency and lower cost
// ---------------------------------------------------------------------------------------

/// One row of the §4.2.5 study: the latency-optimal ABD and CAS plans for Tokyo-heavy HR
/// traffic, for a given fault tolerance.
#[derive(Debug, Clone)]
pub struct EcLatencyRow {
    /// Fault tolerance.
    pub f: usize,
    /// Protocol family ("ABD" / "CAS").
    pub family: &'static str,
    /// Chosen configuration.
    pub config: String,
    /// Worst-case GET latency (ms).
    pub get_latency_ms: f64,
    /// Total cost ($/hour).
    pub cost_per_hour: f64,
}

/// §4.2.5: users in Tokyo, HR (97% reads), 500 req/s, 1 KB objects, one million objects.
pub fn ec_vs_replication_latency() -> Vec<EcLatencyRow> {
    let model = CloudModel::gcp9();
    let mut rows = Vec::new();
    for f in [1usize, 2] {
        let w = spec(
            &model,
            ClientDistribution::Tokyo,
            1024,
            0.97,
            500.0,
            1_000_000 * 1024,
            1000.0,
            f,
        );
        let latency_opt = |filter| {
            Optimizer::with_options(
                model.clone(),
                SearchOptions {
                    objective: Objective::Latency,
                    ..Default::default()
                },
            )
            .optimize_filtered(&w, filter)
        };
        let cost_opt =
            |filter| Optimizer::new(model.clone()).optimize_filtered(&w, filter);
        if let Some(abd) = latency_opt(ProtocolFilter::AbdOnly) {
            rows.push(EcLatencyRow {
                f,
                family: "ABD",
                config: abd.config.describe(),
                get_latency_ms: abd.worst_get_latency_ms,
                cost_per_hour: abd.total_cost(),
            });
        }
        let cas_plan = latency_opt(ProtocolFilter::CasOnly).or_else(|| cost_opt(ProtocolFilter::CasOnly));
        if let Some(cas) = cas_plan {
            rows.push(EcLatencyRow {
                f,
                family: "CAS",
                config: cas.config.describe(),
                get_latency_ms: cas.worst_get_latency_ms,
                cost_per_hour: cas.total_cost(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------------------
// Figure 15: the Wikipedia-derived workload
// ---------------------------------------------------------------------------------------

/// Figure 15: normalized baseline cost CDF over the Wikipedia-derived keys (epoch T1,
/// 750 ms SLO). `num_keys` ≤ 1550 subsamples the key population for quicker runs.
pub fn wikipedia_cdf(num_keys: usize) -> BaselineCdf {
    let model = CloudModel::gcp9();
    let params = legostore_workload::wikipedia::WikipediaParams {
        num_keys: num_keys.max(1),
        ..Default::default()
    };
    let keys = synthesize_wikipedia(&model, &params, 7);
    let optimizer = Optimizer::new(model.clone());
    let mut normalized: Vec<(Baseline, Vec<f64>)> =
        Baseline::ALL.iter().map(|b| (*b, Vec::new())).collect();
    let mut count = 0;
    for key in &keys {
        let Some(optimal) = optimizer.optimize(&key.t1) else { continue };
        count += 1;
        for (b, values) in normalized.iter_mut() {
            if let Some(plan) = evaluate_baseline(&model, &key.t1, *b) {
                values.push(plan.total_cost() / optimal.total_cost());
            }
        }
    }
    BaselineCdf {
        slo_ms: 750.0,
        f: 1,
        workloads: count,
        normalized,
    }
}

/// The Figure 6 companion decision: the optimizer's choice for the hottest Wikipedia key in
/// T1 and T2 (the paper observes CAS(5,1) → CAS(8,1) and a ~20% cost reduction).
pub fn wikipedia_hot_key_choices() -> Option<(Plan, Plan)> {
    let model = CloudModel::gcp9();
    let params = legostore_workload::wikipedia::WikipediaParams::default();
    let keys = synthesize_wikipedia(&model, &params, 7);
    let hottest = keys.first()?;
    let optimizer = Optimizer::new(model.clone());
    let t1 = optimizer.optimize(&hottest.t1)?;
    let t2 = optimizer.optimize(&hottest.t2)?;
    Some((t1, t2))
}

/// Helper exposing the GCP DcIds used by several experiments.
pub fn gcp_dc(name: GcpLocation) -> DcId {
    name.dc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderings_are_nonempty() {
        assert!(table3(1024).contains("CAS(5,3)"));
        assert!(table_inputs().contains("Tokyo"));
    }

    #[test]
    fn small_baseline_cdf_runs() {
        let cdf = baseline_cdf(1000.0, 1, 200); // ~3 workloads
        assert!(cdf.workloads >= 2);
        // The optimizer is never worse than a baseline: all normalized costs >= 1.
        for (b, values) in &cdf.normalized {
            for v in values {
                assert!(*v >= 1.0 - 1e-6, "{}: {v}", b.label());
            }
        }
        assert!(!cdf.render().is_empty());
    }

    #[test]
    fn slo_sensitivity_small_matrix() {
        let rows = slo_sensitivity(
            1,
            &[1024],
            &[200.0, 1000.0],
            &[ClientDistribution::Tokyo],
        );
        assert_eq!(rows.len(), 3 * 2);
        assert!(render_slo_sensitivity(&rows).contains("SLO"));
        // The relaxed SLO must always be feasible for Tokyo-only users.
        assert!(rows
            .iter()
            .filter(|r| r.slo_ms == 1000.0)
            .all(|r| r.choice != "infeasible"));
    }

    #[test]
    fn kopt_study_small() {
        let study = kopt_study(4);
        assert!(!study.cost_vs_k.is_empty());
        assert!(!study.render().is_empty());
    }

    #[test]
    fn nearest_vs_optimal_has_three_rows_and_optimizer_wins() {
        let rows = nearest_vs_optimal();
        assert_eq!(rows.len(), 3);
        let opt = rows.iter().find(|r| r.name == "Optimizer").unwrap();
        for r in &rows {
            assert!(opt.cost.total() <= r.cost.total() + 1e-9, "{}", r.name);
        }
        assert!(render_nearest_vs_optimal(&rows).contains("Optimizer"));
    }

    #[test]
    fn ec_latency_rows_match_paper_shape() {
        let rows = ec_vs_replication_latency();
        assert!(rows.len() >= 2);
        for f in [1usize, 2] {
            let abd = rows.iter().find(|r| r.f == f && r.family == "ABD");
            let cas = rows.iter().find(|r| r.f == f && r.family == "CAS");
            if let (Some(abd), Some(cas)) = (abd, cas) {
                // CAS is cheaper; its GET latency is within ~100 ms of ABD's optimum.
                assert!(cas.cost_per_hour < abd.cost_per_hour, "f={f}");
                assert!(cas.get_latency_ms - abd.get_latency_ms < 120.0, "f={f}");
            }
        }
    }

    #[test]
    fn wikipedia_cdf_small() {
        let cdf = wikipedia_cdf(10);
        assert_eq!(cdf.workloads, 10);
        assert_eq!(cdf.slo_ms, 750.0);
    }
}
