//! All experiments, grouped by the machinery they exercise.

pub mod optimizer_studies;
pub mod sim_studies;
