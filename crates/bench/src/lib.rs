//! Experiment harness regenerating every table and figure of the LEGOStore paper.
//!
//! Each experiment is a plain function that returns a structured result with a text
//! rendering; the `experiments` binary prints them and the Criterion benches time the
//! scaled-down variants. The mapping from paper artifact to function lives in `DESIGN.md`
//! (per-experiment index) and the measured outputs are summarized in `EXPERIMENTS.md`.
//!
//! Optimizer-driven experiments (Figures 1–3, 12–15, Table 3, the `Kopt` model, §4.2.5) are
//! exact re-evaluations of the paper's cost model on the paper's price/RTT tables.
//! Prototype-driven experiments (Figures 4–6, 11, garbage collection) run the protocol
//! state machines on the discrete-event simulator with the same RTTs, so latency shapes —
//! who is faster, by roughly how much, where SLOs break — are comparable even though the
//! absolute testbed numbers differ.

pub mod experiments;

pub use experiments::optimizer_studies;
pub use experiments::sim_studies;
