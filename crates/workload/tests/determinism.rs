//! Trace generation must be deterministic across runs, processes and platforms:
//! every experiment in `legostore-bench` relies on seeded workloads being exactly
//! reproducible. These tests pin both same-process equality (two generators, same
//! seed, identical output) and a golden fingerprint of the generated stream (which
//! would catch a change to the shim `StdRng` stream or to the generators' draw
//! order between runs).

use legostore_workload::wikipedia::{synthesize_wikipedia, WikipediaParams};
use legostore_workload::{TraceGenerator, WorkloadSpec};

/// FNV-1a over a stable byte encoding; avoids depending on `Hash` internals.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn trace_fingerprint(requests: &[legostore_workload::Request]) -> u64 {
    fnv1a(requests.iter().flat_map(|r| {
        r.time_ms
            .to_bits()
            .to_le_bytes()
            .into_iter()
            .chain((r.origin.0 as u64).to_le_bytes())
            .chain((r.key_index as u64).to_le_bytes())
            .chain(r.object_size.to_le_bytes())
            .chain([matches!(r.kind, legostore_types::OpKind::Get) as u8])
    }))
}

#[test]
fn same_seed_same_trace() {
    let spec = WorkloadSpec::example();
    let a = TraceGenerator::new(spec.clone(), 16, 42).generate_count(500);
    let b = TraceGenerator::new(spec.clone(), 16, 42).generate_count(500);
    assert_eq!(a, b);

    let c = TraceGenerator::new(spec, 16, 43).generate_count(500);
    assert_ne!(a, c, "different seeds must give different traces");
}

#[test]
fn trace_stream_is_pinned() {
    let spec = WorkloadSpec::example();
    let requests = TraceGenerator::new(spec, 16, 42).generate_count(500);
    assert_eq!(requests.len(), 500);
    // Golden value: recompute only if the StdRng stream or the generator's draw
    // order changes intentionally, and say so in the commit message.
    assert_eq!(trace_fingerprint(&requests), 0xF944_4C44_A668_37F2);
}

#[test]
fn duration_based_generation_is_deterministic() {
    let spec = WorkloadSpec::example();
    let a = TraceGenerator::new(spec.clone(), 4, 7).generate(10_000.0);
    let b = TraceGenerator::new(spec, 4, 7).generate(10_000.0);
    assert!(!a.is_empty());
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
}

#[test]
fn wikipedia_synthesis_is_pinned() {
    let model = legostore_cloud::CloudModel::gcp9();
    let params = WikipediaParams {
        num_keys: 64,
        ..WikipediaParams::default()
    };
    let a = synthesize_wikipedia(&model, &params, 9);
    let b = synthesize_wikipedia(&model, &params, 9);
    assert_eq!(a.len(), 64);

    for (ka, kb) in a.iter().zip(&b) {
        assert_eq!(ka.name, kb.name);
        assert_eq!(ka.rank, kb.rank);
        assert_eq!(ka.t1.object_size, kb.t1.object_size);
        assert_eq!(ka.t1.arrival_rate.to_bits(), kb.t1.arrival_rate.to_bits());
        assert_eq!(ka.t2.arrival_rate.to_bits(), kb.t2.arrival_rate.to_bits());
    }

    // Popularity ranks are Zipf: rates must be non-increasing in rank.
    assert!(a.windows(2).all(|w| w[0].t1.arrival_rate >= w[1].t1.arrival_rate));

    let size_fp = fnv1a(a.iter().flat_map(|k| k.t1.object_size.to_le_bytes()));
    // Golden value, same recompute rule as `trace_stream_is_pinned`.
    assert_eq!(size_fp, 0xDD5A_D950_4248_1B3F);
}
