//! Property tests for the fault-plan generator: a seed fully determines the schedule
//! (byte-identical across calls), and no generated schedule ever breaches the
//! configuration's fault tolerance.

use legostore_types::DcId;
use legostore_workload::{generate_fault_plan, FaultPlanSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn same_seed_yields_a_byte_identical_schedule(
        seed: u64,
        n in 2usize..9,
        f in 1usize..3,
        windows in 1usize..10,
    ) {
        let mut spec = FaultPlanSpec::for_placement(
            (0..n).map(DcId::from).collect(),
            f,
            20_000.0,
        );
        spec.windows = windows;
        let a = generate_fault_plan(&spec, seed);
        let b = generate_fault_plan(&spec, seed);
        prop_assert_eq!(&a, &b);
        // Byte-identical, not just structurally equal: the stress suites identify runs
        // by seed, so the serialized schedule must be reproducible verbatim.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn generated_schedules_never_breach_the_tolerance(
        seed in 0u64..100_000,
        f in 1usize..4,
        windows in 1usize..12,
    ) {
        let mut spec = FaultPlanSpec::for_placement((0..9usize).map(DcId::from).collect(), f, 30_000.0);
        spec.windows = windows;
        let plan = generate_fault_plan(&spec, seed);
        prop_assert!(
            plan.max_concurrent_faulted() <= f,
            "seed {} produced {} concurrent faults (f = {})",
            seed,
            plan.max_concurrent_faulted(),
            f
        );
        // Every fault window is closed by its repair inside the schedule.
        let mut live = legostore_types::FaultState::new(&plan);
        live.advance_to(f64::INFINITY);
        prop_assert!(!live.any_active(), "unclosed fault window: {:?}", plan);
    }
}
