//! Property tests for the campaign's scenario generators: time-warped schedules
//! conserve the base trace's requests exactly, correlated-region outages never breach
//! the placement's fault tolerance, and every generator is seed-deterministic.

use legostore_cloud::GcpLocation;
use legostore_types::{DcId, FaultKind, OpKind};
use legostore_workload::{
    correlated_outage_plan, diurnal_schedule, flash_crowd_schedule, pick_outage_region,
    Region, TraceGenerator, WorkloadSpec,
};
use proptest::prelude::*;

fn spec_with(rate: f64, ratio: f64) -> WorkloadSpec {
    let mut s = WorkloadSpec::example();
    s.arrival_rate = rate;
    s.read_ratio = ratio;
    s.client_distribution = vec![
        (GcpLocation::Tokyo.dc(), 0.4),
        (GcpLocation::Frankfurt.dc(), 0.3),
        (GcpLocation::Sydney.dc(), 0.3),
    ];
    s
}

/// The placement encoded by a 9-bit mask over the gcp9 data centers.
fn placement_from(mask: u16) -> Vec<DcId> {
    (0..9usize).filter(|i| mask & (1 << i) != 0).map(DcId::from).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diurnal_schedules_conserve_the_base_trace(
        seed in 0u64..10_000,
        rate in 50.0f64..400.0,
        cycles in 1u32..5,
        swing in 0.0f64..0.95,
    ) {
        let duration = 8_000.0;
        let spec = spec_with(rate, 0.5);
        let base = TraceGenerator::new(spec.clone(), 8, seed).generate(duration);
        let warped = diurnal_schedule(&spec, 8, seed, duration, cycles, swing);
        // Exactly the base requests — count, kind, origin, key, size — redistributed
        // in time; the warp may not invent, drop, or relabel a single request.
        prop_assert_eq!(base.len(), warped.len());
        for (b, w) in base.iter().zip(&warped) {
            prop_assert_eq!(b.kind, w.kind);
            prop_assert_eq!(b.origin, w.origin);
            prop_assert_eq!(b.key_index, w.key_index);
            prop_assert_eq!(b.object_size, w.object_size);
            prop_assert!((0.0..=duration).contains(&w.time_ms));
        }
    }

    #[test]
    fn flash_crowds_conserve_count_and_only_retarget_inside_the_window(
        seed in 0u64..10_000,
        rate in 50.0f64..400.0,
        surge_mass in 0.1f64..0.9,
        crowd_frac in 0.0f64..1.0,
    ) {
        let duration = 8_000.0;
        let (w0, w1) = (0.3 * duration, 0.6 * duration);
        let target = GcpLocation::LosAngeles.dc();
        let spec = spec_with(rate, 30.0 / 31.0);
        let base = TraceGenerator::new(spec.clone(), 8, seed).generate(duration);
        let warped = flash_crowd_schedule(
            &spec, 8, seed, duration, target, w0, w1, surge_mass, crowd_frac,
        );
        prop_assert_eq!(base.len(), warped.len());
        // The op mix and sizes survive re-timing and re-origin untouched.
        let gets = |rs: &[legostore_workload::Request]| {
            rs.iter().filter(|r| r.kind == OpKind::Get).count()
        };
        prop_assert_eq!(gets(&base), gets(&warped));
        let bytes = |rs: &[legostore_workload::Request]| {
            rs.iter().map(|r| r.object_size).sum::<u64>()
        };
        prop_assert_eq!(bytes(&base), bytes(&warped));
        for r in &warped {
            prop_assert!((0.0..=duration).contains(&r.time_ms));
            // Re-origination to the crowded DC only happens inside the surge window;
            // outside it the original origins must survive (the base trace never
            // targets LA in this spec, so any LA origin outside the window is a bug).
            if !(w0..w1).contains(&r.time_ms) {
                prop_assert_ne!(r.origin, target);
            }
        }
        let mut last = 0.0f64;
        for r in &warped {
            prop_assert!(r.time_ms >= last, "schedule must stay time-sorted");
            last = r.time_ms;
        }
    }

    #[test]
    fn region_outages_never_breach_the_placement_tolerance(
        mask in 1u16..512,
        f in 1usize..3,
        seed: u64,
    ) {
        let placement = placement_from(mask);
        for region in Region::ALL {
            let overlap = region
                .dcs()
                .iter()
                .filter(|d| placement.contains(d))
                .count();
            let plan = correlated_outage_plan(region, &placement, f, 1_000.0, 2_000.0, seed);
            if overlap > f {
                prop_assert!(plan.is_none(), "outage beyond f must be refused");
                continue;
            }
            let plan = plan.expect("within-tolerance outage must be expressible");
            // Every crash is paired with a restart, and the crashed *placement*
            // members never exceed f (non-placement DCs may crash freely — they hold
            // no shards).
            let crashed_members = plan
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    FaultKind::CrashDc { dc } if placement.contains(&dc) => Some(dc),
                    _ => None,
                })
                .count();
            prop_assert!(crashed_members <= f);
            let crashes = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::CrashDc { .. }))
                .count();
            let restarts = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::RestartDc { .. }))
                .count();
            prop_assert_eq!(crashes, restarts);
        }
        // The picker must agree with the plan builder about eligibility.
        if let Some(region) = pick_outage_region(&placement, f, seed) {
            prop_assert!(
                correlated_outage_plan(region, &placement, f, 0.0, 1.0, seed).is_some()
            );
        }
    }

    #[test]
    fn scenario_schedules_are_seed_deterministic(
        seed in 0u64..10_000,
        swing in 0.0f64..0.9,
    ) {
        let duration = 6_000.0;
        let spec = spec_with(120.0, 0.5);
        let a = diurnal_schedule(&spec, 4, seed, duration, 2, swing);
        let b = diurnal_schedule(&spec, 4, seed, duration, 2, swing);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let target = GcpLocation::Oregon.dc();
        let c = flash_crowd_schedule(&spec, 4, seed, duration, target, 1_000.0, 3_000.0, 0.5, 0.7);
        let d = flash_crowd_schedule(&spec, 4, seed, duration, target, 1_000.0, 3_000.0, 0.5, 0.7);
        prop_assert_eq!(format!("{c:?}"), format!("{d:?}"));
    }
}
