//! Workload specifications and generators.
//!
//! The paper evaluates LEGOStore over a systematically varied workload space (§4.1): 3
//! object sizes × 3 read ratios × 3 arrival rates × 3 datastore sizes × 7 client
//! distributions = 567 "basic" workloads, plus a uniform client distribution, customized
//! workloads for specific figures, and a real-world workload derived from a Wikipedia trace.
//!
//! This crate provides:
//!
//! * [`WorkloadSpec`] — the per-key(-group) workload features the optimizer consumes;
//! * [`grid`] — the 567 basic workloads and the named client distributions;
//! * [`trace`] — an open-loop Poisson request generator turning a spec into a timestamped
//!   request trace for the simulator / threaded runtime;
//! * [`wikipedia`] — a synthetic stand-in for the Wikipedia trace with the same salient
//!   features (read-mostly, Zipf-skewed popularity, two epochs with different client mixes);
//! * [`fault`] — seed-driven generation of adversarial fault schedules
//!   (`legostore_types::fault::FaultPlan`) bounded by a configuration's tolerance `f`,
//!   feeding the linearizability-under-faults stress suites;
//! * [`scenario`] — seeded non-stationary schedules (diurnal swings, flash crowds) and
//!   correlated-region outage plans, the raw material of the campaign engine's
//!   scenario families.

pub mod fault;
pub mod grid;
pub mod scenario;
pub mod spec;
pub mod trace;
pub mod wikipedia;

pub use fault::{generate_fault_plan, FaultMenu, FaultPlanSpec};
pub use grid::{basic_workloads, client_distribution, ClientDistribution};
pub use scenario::{
    correlated_outage_plan, diurnal_schedule, flash_crowd_schedule, pick_outage_region,
    reconfig_storm_plan, reconfig_storm_times, Region,
};
pub use spec::{ReadRatio, WorkloadSpec};
pub use trace::{Request, TraceGenerator};
pub use wikipedia::{synthesize_wikipedia, WikipediaEpoch, WikipediaKey};
