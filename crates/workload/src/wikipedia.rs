//! Synthetic stand-in for the Wikipedia workload of §4.6.
//!
//! The paper samples 1550 objects from a public Wikipedia web-server trace and uses, per
//! key, the arrival rate, request sizes and GET/PUT mix over two one-hour epochs (T1 and
//! T2), assuming clients uniformly spread over 5 DCs in T1 and all 9 DCs in T2. The actual
//! trace is not redistributable inside this repository, so this module synthesizes a
//! workload with the same salient features:
//!
//! * read-mostly traffic (≈ 97 % GETs, Wikipedia is read-dominated);
//! * a heavily skewed (Zipf) popularity distribution across keys;
//! * object sizes log-normally spread around tens of kilobytes;
//! * an epoch change that both grows the per-key arrival rate and widens the client
//!   distribution, which is what triggers the reconfiguration studied in Figure 6.

use crate::spec::WorkloadSpec;
use legostore_cloud::{CloudModel, GcpLocation};
use legostore_types::DcId;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which of the two one-hour periods a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WikipediaEpoch {
    /// First hour: clients uniform over Tokyo, Sydney, Singapore, Frankfurt, London.
    T1,
    /// Second hour: clients uniform over all nine DCs, higher arrival rates.
    T2,
}

/// One synthesized key with its workload in both epochs.
#[derive(Debug, Clone)]
pub struct WikipediaKey {
    /// Key identifier (`wiki-<rank>`); rank 0 is the most popular object.
    pub name: String,
    /// Popularity rank (0 = hottest).
    pub rank: usize,
    /// Workload during T1.
    pub t1: WorkloadSpec,
    /// Workload during T2.
    pub t2: WorkloadSpec,
}

/// Parameters controlling the synthesis. Defaults reproduce the paper's setting.
#[derive(Debug, Clone)]
pub struct WikipediaParams {
    /// Number of sampled keys (paper: 1550).
    pub num_keys: usize,
    /// Zipf exponent of the popularity distribution.
    pub zipf_exponent: f64,
    /// Aggregate arrival rate across all keys during T1 (req/s). The paper's hottest key
    /// sees ≈ 16–20 req/s; with 1550 keys and s ≈ 0.99 an aggregate of ≈ 120 req/s gives
    /// that shape.
    pub aggregate_rate_t1: f64,
    /// Multiplier applied to arrival rates in T2 (the Figure 6 key goes from 16 to 35 req/s).
    pub t2_rate_multiplier: f64,
    /// Fraction of GETs.
    pub read_ratio: f64,
    /// Latency SLO applied to both GETs and PUTs (paper: 750 ms).
    pub slo_ms: f64,
    /// Fault tolerance.
    pub fault_tolerance: usize,
}

impl Default for WikipediaParams {
    fn default() -> Self {
        WikipediaParams {
            num_keys: 1550,
            zipf_exponent: 0.99,
            aggregate_rate_t1: 120.0,
            t2_rate_multiplier: 35.0 / 16.0,
            read_ratio: 0.97,
            slo_ms: 750.0,
            fault_tolerance: 1,
        }
    }
}

/// Synthesizes the two-epoch Wikipedia-like workload.
pub fn synthesize_wikipedia(
    model: &CloudModel,
    params: &WikipediaParams,
    seed: u64,
) -> Vec<WikipediaKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.num_keys;
    // Zipf weights.
    let weights: Vec<f64> = (1..=n)
        .map(|r| 1.0 / (r as f64).powf(params.zipf_exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let t1_clients: Vec<(DcId, f64)> = [
        GcpLocation::Tokyo,
        GcpLocation::Sydney,
        GcpLocation::Singapore,
        GcpLocation::Frankfurt,
        GcpLocation::London,
    ]
    .iter()
    .map(|l| (l.dc(), 0.2))
    .collect();
    let t2_clients: Vec<(DcId, f64)> = model
        .dc_ids()
        .into_iter()
        .map(|d| (d, 1.0 / model.num_dcs() as f64))
        .collect();

    (0..n)
        .map(|rank| {
            let rate_t1 = params.aggregate_rate_t1 * weights[rank] / total_weight;
            let rate_t2 = rate_t1 * params.t2_rate_multiplier;
            // Log-normal-ish object sizes centered around ~20 KB, clamped to [256 B, 512 KB].
            let ln: f64 = 9.9 + rng.gen_range(-1.5..1.5);
            let object_size = ln.exp().clamp(256.0, 512.0 * 1024.0) as u64;
            let base = WorkloadSpec {
                name: format!("wiki-{rank}-t1"),
                object_size,
                metadata_size: legostore_cloud::METADATA_BYTES,
                read_ratio: params.read_ratio,
                arrival_rate: rate_t1,
                total_data_bytes: object_size,
                client_distribution: t1_clients.clone(),
                slo_get_ms: params.slo_ms,
                slo_put_ms: params.slo_ms,
                fault_tolerance: params.fault_tolerance,
            };
            let t2 = WorkloadSpec {
                name: format!("wiki-{rank}-t2"),
                arrival_rate: rate_t2,
                client_distribution: t2_clients.clone(),
                ..base.clone()
            };
            WikipediaKey {
                name: format!("wiki-{rank}"),
                rank,
                t1: base,
                t2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_synthesis_matches_paper_scale() {
        let model = CloudModel::gcp9();
        let keys = synthesize_wikipedia(&model, &WikipediaParams::default(), 1);
        assert_eq!(keys.len(), 1550);
        for k in &keys {
            k.t1.validate().unwrap();
            k.t2.validate().unwrap();
            assert_eq!(k.t1.client_distribution.len(), 5);
            assert_eq!(k.t2.client_distribution.len(), 9);
            assert!(k.t2.arrival_rate > k.t1.arrival_rate);
            assert!(k.t1.read_ratio > 0.9, "read-mostly");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let model = CloudModel::gcp9();
        let keys = synthesize_wikipedia(&model, &WikipediaParams::default(), 2);
        let hottest = keys[0].t1.arrival_rate;
        let median = keys[keys.len() / 2].t1.arrival_rate;
        assert!(hottest > 50.0 * median, "hottest {hottest} vs median {median}");
        // Ranks are ordered by decreasing rate.
        for w in keys.windows(2) {
            assert!(w[0].t1.arrival_rate >= w[1].t1.arrival_rate);
        }
    }

    #[test]
    fn hottest_key_rate_is_in_paper_ballpark() {
        // Paper: the hottest sampled key sees ~16-20 req/s in T1 and ~35 in T2.
        let model = CloudModel::gcp9();
        let keys = synthesize_wikipedia(&model, &WikipediaParams::default(), 3);
        let hottest = &keys[0];
        assert!(hottest.t1.arrival_rate > 5.0 && hottest.t1.arrival_rate < 40.0);
        assert!(hottest.t2.arrival_rate > hottest.t1.arrival_rate * 2.0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let model = CloudModel::gcp9();
        let a = synthesize_wikipedia(&model, &WikipediaParams::default(), 9);
        let b = synthesize_wikipedia(&model, &WikipediaParams::default(), 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[17].t1.object_size, b[17].t1.object_size);
        assert_eq!(a[17].t1.arrival_rate, b[17].t1.arrival_rate);
    }

    #[test]
    fn custom_params_are_honored() {
        let model = CloudModel::gcp9();
        let params = WikipediaParams {
            num_keys: 10,
            slo_ms: 500.0,
            fault_tolerance: 2,
            ..Default::default()
        };
        let keys = synthesize_wikipedia(&model, &params, 4);
        assert_eq!(keys.len(), 10);
        assert!(keys.iter().all(|k| k.t1.slo_get_ms == 500.0));
        assert!(keys.iter().all(|k| k.t2.fault_tolerance == 2));
    }
}
