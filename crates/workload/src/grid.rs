//! The paper's systematic workload grid (§4.1).
//!
//! 3 object sizes × 3 read ratios × 3 arrival rates × 3 datastore sizes × 7 client
//! distributions = 567 basic workloads. The eighth, uniform, distribution is used in
//! sensitivity studies (Figure 2) and the concurrency experiment (Figure 4).

use crate::spec::{ReadRatio, WorkloadSpec};
use legostore_cloud::{CloudModel, GcpLocation};
use legostore_types::DcId;

/// Named client distributions from §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientDistribution {
    /// All requests from Oregon.
    Oregon,
    /// All requests from Los Angeles.
    LosAngeles,
    /// All requests from Tokyo.
    Tokyo,
    /// All requests from Sydney.
    Sydney,
    /// 50/50 Los Angeles and Oregon.
    LosAngelesOregon,
    /// 50/50 Sydney and Singapore.
    SydneySingapore,
    /// 50/50 Sydney and Tokyo.
    SydneyTokyo,
    /// Uniform over all nine DCs (used for Figure 2's "uniform" rows and Figure 4/11).
    Uniform,
}

impl ClientDistribution {
    /// The seven distributions of the 567-workload grid.
    pub const BASIC: [ClientDistribution; 7] = [
        ClientDistribution::Oregon,
        ClientDistribution::LosAngeles,
        ClientDistribution::Tokyo,
        ClientDistribution::Sydney,
        ClientDistribution::LosAngelesOregon,
        ClientDistribution::SydneySingapore,
        ClientDistribution::SydneyTokyo,
    ];

    /// All eight named distributions (the grid's seven plus Uniform).
    pub const ALL: [ClientDistribution; 8] = [
        ClientDistribution::Oregon,
        ClientDistribution::LosAngeles,
        ClientDistribution::Tokyo,
        ClientDistribution::Sydney,
        ClientDistribution::LosAngelesOregon,
        ClientDistribution::SydneySingapore,
        ClientDistribution::SydneyTokyo,
        ClientDistribution::Uniform,
    ];

    /// Short label for figures.
    pub fn label(self) -> &'static str {
        match self {
            ClientDistribution::Oregon => "Oregon",
            ClientDistribution::LosAngeles => "LA",
            ClientDistribution::Tokyo => "Tokyo",
            ClientDistribution::Sydney => "Sydney",
            ClientDistribution::LosAngelesOregon => "LA+Oregon",
            ClientDistribution::SydneySingapore => "Sydney+Singapore",
            ClientDistribution::SydneyTokyo => "Sydney+Tokyo",
            ClientDistribution::Uniform => "Uniform",
        }
    }
}

/// Materializes a named client distribution as per-DC fractions against `model`.
pub fn client_distribution(dist: ClientDistribution, model: &CloudModel) -> Vec<(DcId, f64)> {
    let loc = |l: GcpLocation| l.dc();
    match dist {
        ClientDistribution::Oregon => vec![(loc(GcpLocation::Oregon), 1.0)],
        ClientDistribution::LosAngeles => vec![(loc(GcpLocation::LosAngeles), 1.0)],
        ClientDistribution::Tokyo => vec![(loc(GcpLocation::Tokyo), 1.0)],
        ClientDistribution::Sydney => vec![(loc(GcpLocation::Sydney), 1.0)],
        ClientDistribution::LosAngelesOregon => vec![
            (loc(GcpLocation::LosAngeles), 0.5),
            (loc(GcpLocation::Oregon), 0.5),
        ],
        ClientDistribution::SydneySingapore => vec![
            (loc(GcpLocation::Sydney), 0.5),
            (loc(GcpLocation::Singapore), 0.5),
        ],
        ClientDistribution::SydneyTokyo => vec![
            (loc(GcpLocation::Sydney), 0.5),
            (loc(GcpLocation::Tokyo), 0.5),
        ],
        ClientDistribution::Uniform => {
            let n = model.num_dcs();
            model
                .dc_ids()
                .into_iter()
                .map(|d| (d, 1.0 / n as f64))
                .collect()
        }
    }
}

/// Object sizes of the grid in bytes (1 KB, 10 KB, 100 KB).
pub const OBJECT_SIZES: [u64; 3] = [1 << 10, 10 * (1 << 10), 100 * (1 << 10)];

/// Aggregate arrival rates of the grid in requests/second.
pub const ARRIVAL_RATES: [f64; 3] = [50.0, 200.0, 500.0];

/// Total datastore sizes of the grid in bytes (100 GB, 1 TB, 10 TB).
pub const DATA_SIZES: [u64; 3] = [100 * 1_000_000_000, 1_000_000_000_000, 10_000_000_000_000];

/// Builds the 567 basic workloads for the given SLOs and fault tolerance.
pub fn basic_workloads(
    model: &CloudModel,
    slo_get_ms: f64,
    slo_put_ms: f64,
    fault_tolerance: usize,
) -> Vec<WorkloadSpec> {
    let mut out = Vec::with_capacity(567);
    for &object_size in &OBJECT_SIZES {
        for ratio in ReadRatio::ALL {
            for &rate in &ARRIVAL_RATES {
                for &data in &DATA_SIZES {
                    for dist in ClientDistribution::BASIC {
                        let clients = client_distribution(dist, model);
                        out.push(WorkloadSpec {
                            name: format!(
                                "o{}k-{}-r{}-d{}GB-{}",
                                object_size / 1024,
                                ratio.label(),
                                rate as u64,
                                data / 1_000_000_000,
                                dist.label()
                            ),
                            object_size,
                            metadata_size: legostore_cloud::METADATA_BYTES,
                            read_ratio: ratio.rho(),
                            arrival_rate: rate,
                            total_data_bytes: data,
                            client_distribution: clients,
                            slo_get_ms,
                            slo_put_ms,
                            fault_tolerance,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_567_workloads() {
        let model = CloudModel::gcp9();
        let grid = basic_workloads(&model, 1000.0, 1000.0, 1);
        assert_eq!(grid.len(), 567);
        for w in &grid {
            w.validate().unwrap();
            assert_eq!(w.fault_tolerance, 1);
            assert_eq!(w.slo_get_ms, 1000.0);
        }
    }

    #[test]
    fn grid_names_are_unique() {
        let model = CloudModel::gcp9();
        let grid = basic_workloads(&model, 200.0, 200.0, 1);
        let names: std::collections::HashSet<_> = grid.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), grid.len());
    }

    #[test]
    fn uniform_distribution_covers_all_dcs() {
        let model = CloudModel::gcp9();
        let dist = client_distribution(ClientDistribution::Uniform, &model);
        assert_eq!(dist.len(), 9);
        let sum: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn named_distributions_sum_to_one() {
        let model = CloudModel::gcp9();
        for d in ClientDistribution::ALL {
            let dist = client_distribution(d, &model);
            let sum: f64 = dist.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", d.label());
            assert!(!dist.is_empty());
        }
    }

    #[test]
    fn sydney_tokyo_is_the_fig3_distribution() {
        let model = CloudModel::gcp9();
        let dist = client_distribution(ClientDistribution::SydneyTokyo, &model);
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().any(|(d, _)| *d == GcpLocation::Sydney.dc()));
        assert!(dist.iter().any(|(d, _)| *d == GcpLocation::Tokyo.dc()));
    }
}
