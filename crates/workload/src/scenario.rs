//! Seeded scenario generators: workload *shapes* the paper only gestures at.
//!
//! The evaluation's basic grid (§4.1) is stationary — a flat Poisson rate, a fixed
//! client mix — but the reconfiguration story (Figure 5, §3.4) is about workloads that
//! *change*. This module turns a stationary [`WorkloadSpec`] into non-stationary
//! schedules by deterministic, count-conserving transforms of its Poisson trace:
//!
//! * [`diurnal_schedule`] — a day/night load swing: arrivals follow a sinusoidal
//!   intensity, so the same requests bunch into peaks and thin out in troughs;
//! * [`flash_crowd_schedule`] — a surge window during which arrivals concentrate and
//!   re-originate at one data center (the "everyone piles onto one region" event);
//! * [`correlated_outage_plan`] — a whole geographic [`Region`] failing at once
//!   (crash + restart for every DC in the region), the correlated-failure case a
//!   single-DC fault plan never produces;
//! * [`reconfig_storm_times`] / [`reconfig_storm_plan`] — the reconfiguration-storm
//!   scenario: epoch changes deliberately raced against live traffic while a seeded
//!   within-`f` fault plan attacks the transfer from both the old and the new
//!   placement.
//!
//! Both schedule transforms are monotone time-warps of the base trace, so they conserve
//! the total request count *exactly* (the property the campaign proptests pin): a
//! warped trace has the same requests, the same GET/PUT mix and the same per-request
//! object sizes — only the arrival instants (and, for the flash crowd, the origins
//! inside the window) change. Determinism: everything derives from the spec, the seed
//! and closed-form math; the same inputs yield byte-identical schedules.

use crate::fault::{generate_fault_plan, FaultPlanSpec};
use crate::spec::WorkloadSpec;
use crate::trace::{Request, TraceGenerator};
use legostore_cloud::GcpLocation;
use legostore_types::{DcId, FaultEvent, FaultKind, FaultPlan};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A geographic grouping of the gcp9 data centers, used for correlated outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Tokyo, Sydney, Singapore.
    AsiaPacific,
    /// Frankfurt, London.
    Europe,
    /// Virginia, São Paulo.
    AmericasEast,
    /// Los Angeles, Oregon.
    AmericasWest,
}

impl Region {
    /// All four regions in a fixed order.
    pub const ALL: [Region; 4] = [
        Region::AsiaPacific,
        Region::Europe,
        Region::AmericasEast,
        Region::AmericasWest,
    ];

    /// The data centers belonging to this region.
    pub fn dcs(self) -> Vec<DcId> {
        let loc = |l: GcpLocation| l.dc();
        match self {
            Region::AsiaPacific => vec![
                loc(GcpLocation::Tokyo),
                loc(GcpLocation::Sydney),
                loc(GcpLocation::Singapore),
            ],
            Region::Europe => vec![loc(GcpLocation::Frankfurt), loc(GcpLocation::London)],
            Region::AmericasEast => vec![loc(GcpLocation::Virginia), loc(GcpLocation::SaoPaulo)],
            Region::AmericasWest => vec![loc(GcpLocation::LosAngeles), loc(GcpLocation::Oregon)],
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Region::AsiaPacific => "apac",
            Region::Europe => "europe",
            Region::AmericasEast => "americas-east",
            Region::AmericasWest => "americas-west",
        }
    }
}

/// Normalized sinusoidal intensity profile: `Λ(u) = u − a/(2πc)·cos(2πcu − π/2)` for
/// `u ∈ [0,1]`, the cumulative of `λ(u) = 1 + a·sin(2πcu − π/2)`. With integer cycle
/// count `c` this maps `[0,1]` onto `[0,1]` monotonically (the schedule starts and ends
/// in a trough), so warping through its inverse conserves order and count.
fn diurnal_cumulative(u: f64, swing: f64, cycles: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * cycles;
    u - (swing / w) * (w * u - std::f64::consts::FRAC_PI_2).cos()
}

/// Inverts a monotone cumulative on `[0,1]` by bisection (deterministic, no
/// floating-point environment dependence beyond IEEE arithmetic).
fn invert_monotone(target: f64, f: impl Fn(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..52 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// A diurnal (day/night) load schedule: the spec's Poisson trace, time-warped so the
/// instantaneous arrival rate follows `1 + swing·sin(·)` with `cycles` full periods
/// over `duration_ms`. `swing ∈ [0, 1)` is the relative peak amplitude (0 = flat,
/// 0.8 = peaks at 1.8× and troughs at 0.2× the mean rate). The warp is monotone, so
/// the output has exactly the requests of the flat trace — same count, kinds, origins,
/// sizes — in the same order, only redistributed in time.
pub fn diurnal_schedule(
    spec: &WorkloadSpec,
    num_keys: usize,
    seed: u64,
    duration_ms: f64,
    cycles: u32,
    swing: f64,
) -> Vec<Request> {
    assert!((0.0..1.0).contains(&swing), "swing must be in [0,1)");
    assert!(cycles >= 1, "need at least one cycle");
    let mut base = TraceGenerator::new(spec.clone(), num_keys, seed).generate(duration_ms);
    let cycles = cycles as f64;
    for r in &mut base {
        let s = (r.time_ms / duration_ms).clamp(0.0, 1.0);
        let u = invert_monotone(s, |u| diurnal_cumulative(u, swing, cycles));
        r.time_ms = u * duration_ms;
    }
    base
}

/// A flash-crowd schedule: during the window `[window_start_ms, window_end_ms)` the
/// arrival rate surges so that `surge_mass` of *all* requests land inside the window
/// (piecewise-linear time-warp, count-conserving), and each request inside the window
/// is re-originated at `target` with probability `crowd_frac` (seeded coin flips).
/// Models one DC suddenly receiving the world's traffic — the situation that makes a
/// placement optimized for the old mix wrong.
#[allow(clippy::too_many_arguments)]
pub fn flash_crowd_schedule(
    spec: &WorkloadSpec,
    num_keys: usize,
    seed: u64,
    duration_ms: f64,
    target: DcId,
    window_start_ms: f64,
    window_end_ms: f64,
    surge_mass: f64,
    crowd_frac: f64,
) -> Vec<Request> {
    assert!(
        0.0 <= window_start_ms && window_start_ms < window_end_ms && window_end_ms <= duration_ms,
        "window must lie inside the schedule"
    );
    assert!((0.0..=1.0).contains(&surge_mass));
    assert!((0.0..=1.0).contains(&crowd_frac));
    let (w0, w1) = (window_start_ms / duration_ms, window_end_ms / duration_ms);
    let window_len = w1 - w0;
    let outside_len = 1.0 - window_len;
    // Piecewise-linear cumulative: mass `surge_mass` inside the window, the rest spread
    // uniformly outside. Degenerate splits (everything inside/outside) stay monotone
    // because the warp inverts the cumulative only at interior points.
    let outside_rate = if outside_len > 0.0 { (1.0 - surge_mass) / outside_len } else { 0.0 };
    let inside_rate = if window_len > 0.0 { surge_mass / window_len } else { 0.0 };
    let cumulative = |u: f64| -> f64 {
        if u <= w0 {
            u * outside_rate
        } else if u <= w1 {
            w0 * outside_rate + (u - w0) * inside_rate
        } else {
            w0 * outside_rate + window_len * inside_rate + (u - w1) * outside_rate
        }
    };
    let mut base = TraceGenerator::new(spec.clone(), num_keys, seed).generate(duration_ms);
    // A distinct stream for the re-origin coin flips, so the base trace stays the same
    // trace the flat schedule would have produced.
    let mut crowd_rng = StdRng::seed_from_u64(seed ^ 0x666c_6173_685f_6372); // "flash_cr"
    for r in &mut base {
        let s = (r.time_ms / duration_ms).clamp(0.0, 1.0);
        let u = invert_monotone(s, cumulative);
        r.time_ms = u * duration_ms;
        let in_window = (w0..w1).contains(&u);
        if in_window && crowd_rng.gen::<f64>() < crowd_frac {
            r.origin = target;
        }
    }
    base.sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap());
    base
}

/// A correlated-region outage: every DC of `region` crashes at `start_ms` and restarts
/// at `end_ms` — the failure mode independent single-DC windows never produce. Returns
/// `None` when the outage would exceed the placement's tolerance (more than `f`
/// placement members live in the region); LEGOStore only promises liveness within `f`,
/// so a within-tolerance campaign cell must pick a different region.
pub fn correlated_outage_plan(
    region: Region,
    placement: &[DcId],
    f: usize,
    start_ms: f64,
    end_ms: f64,
    seed: u64,
) -> Option<FaultPlan> {
    assert!(start_ms < end_ms);
    let dcs = region.dcs();
    let in_placement = dcs.iter().filter(|d| placement.contains(d)).count();
    if in_placement > f {
        return None;
    }
    let mut events = Vec::with_capacity(dcs.len() * 2);
    for dc in &dcs {
        events.push(FaultEvent { at_ms: start_ms, kind: FaultKind::CrashDc { dc: *dc } });
        events.push(FaultEvent { at_ms: end_ms, kind: FaultKind::RestartDc { dc: *dc } });
    }
    Some(FaultPlan { seed, events }.sorted())
}

/// The flip instants of a reconfiguration storm: `flips` epoch changes spread evenly
/// through the middle half of the run (`[0.25, 0.75] × duration_ms`), so every epoch
/// — including the first and the last — sees client traffic on both sides of its
/// boundary. Deterministic and closed-form; pair each instant with the target
/// configuration of your choice (the canonical storm alternates ABD ↔ CAS).
pub fn reconfig_storm_times(duration_ms: f64, flips: usize) -> Vec<f64> {
    assert!(flips >= 1, "a storm needs at least one reconfiguration");
    if flips == 1 {
        return vec![0.5 * duration_ms];
    }
    (0..flips)
        .map(|i| duration_ms * (0.25 + 0.5 * i as f64 / (flips - 1) as f64))
        .collect()
}

/// The fault plan of a reconfig-storm cell: a seeded within-`f` plan whose victims are
/// drawn from the *union* of every placement the storm touches — old- and new-epoch
/// hosts are both fair game, so crash/partition windows land on the transfer's source
/// and destination alike — while `max_concurrent_faulted() ≤ f` still holds by
/// construction. `universe` is the full deployment (clients included), used for
/// partition cuts and lossy-link peers exactly as in [`FaultPlanSpec`].
pub fn reconfig_storm_plan(
    placements: &[Vec<DcId>],
    universe: Vec<DcId>,
    f: usize,
    duration_ms: f64,
    seed: u64,
) -> FaultPlan {
    let mut dcs: Vec<DcId> = placements.iter().flatten().copied().collect();
    dcs.sort();
    dcs.dedup();
    let mut spec = FaultPlanSpec::for_placement(dcs, f, duration_ms);
    spec.universe = universe;
    // One more window than the default: a storm run is long enough, and a transfer
    // racing a fault is the whole point of the family.
    spec.windows = 4;
    generate_fault_plan(&spec, seed)
}

/// Deterministically picks a region whose outage `placement` (with tolerance `f`) can
/// ride out, rotating by `seed` so different campaign cells exercise different regions.
/// Returns `None` only if *every* region overlaps the placement in more than `f` DCs
/// (impossible for the paper's placements, which spread across ≥ 3 regions).
pub fn pick_outage_region(placement: &[DcId], f: usize, seed: u64) -> Option<Region> {
    let eligible: Vec<Region> = Region::ALL
        .into_iter()
        .filter(|r| r.dcs().iter().filter(|d| placement.contains(d)).count() <= f)
        .collect();
    if eligible.is_empty() {
        return None;
    }
    Some(eligible[(seed as usize) % eligible.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use legostore_cloud::CloudModel;

    fn spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::example();
        s.arrival_rate = 300.0;
        s.client_distribution = vec![
            (GcpLocation::Tokyo.dc(), 0.5),
            (GcpLocation::Frankfurt.dc(), 0.5),
        ];
        s
    }

    #[test]
    fn regions_partition_the_nine_dcs() {
        let model = CloudModel::gcp9();
        let mut all: Vec<DcId> = Region::ALL.iter().flat_map(|r| r.dcs()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), model.num_dcs());
    }

    #[test]
    fn diurnal_conserves_count_and_order_and_is_deterministic() {
        let flat = TraceGenerator::new(spec(), 3, 11).generate(20_000.0);
        let warped = diurnal_schedule(&spec(), 3, 11, 20_000.0, 2, 0.8);
        assert_eq!(flat.len(), warped.len());
        for (a, b) in flat.iter().zip(warped.iter()) {
            assert_eq!((a.kind, a.origin, a.key_index, a.object_size),
                       (b.kind, b.origin, b.key_index, b.object_size));
        }
        for w in warped.windows(2) {
            assert!(w[0].time_ms <= w[1].time_ms);
        }
        assert_eq!(warped, diurnal_schedule(&spec(), 3, 11, 20_000.0, 2, 0.8));
    }

    #[test]
    fn diurnal_actually_moves_mass_into_peaks() {
        // With two cycles over the window, the quarters around the peaks (at u = 1/4 and
        // u = 3/4 of each cycle) must hold visibly more than a flat trace's share.
        let warped = diurnal_schedule(&spec(), 1, 5, 40_000.0, 1, 0.9);
        let peak_window = warped
            .iter()
            .filter(|r| (0.35..0.65).contains(&(r.time_ms / 40_000.0)))
            .count() as f64;
        let frac = peak_window / warped.len() as f64;
        assert!(frac > 0.40, "peak-centered 30% of time should hold >40% of load, got {frac}");
    }

    #[test]
    fn flash_crowd_concentrates_and_reorigins() {
        let total = 30_000.0;
        let warped = flash_crowd_schedule(
            &spec(), 2, 7, total,
            GcpLocation::Sydney.dc(),
            10_000.0, 14_000.0, 0.6, 0.9,
        );
        let flat = TraceGenerator::new(spec(), 2, 7).generate(total);
        assert_eq!(flat.len(), warped.len(), "count conserved");
        let in_window: Vec<&Request> = warped
            .iter()
            .filter(|r| (10_000.0..14_000.0).contains(&r.time_ms))
            .collect();
        let mass = in_window.len() as f64 / warped.len() as f64;
        assert!((0.5..0.7).contains(&mass), "window should hold ~60% of requests, got {mass}");
        let crowd = in_window
            .iter()
            .filter(|r| r.origin == GcpLocation::Sydney.dc())
            .count() as f64;
        assert!(
            crowd / in_window.len() as f64 > 0.8,
            "most window requests re-originate at the crowded DC"
        );
        assert_eq!(
            warped,
            flash_crowd_schedule(
                &spec(), 2, 7, total,
                GcpLocation::Sydney.dc(),
                10_000.0, 14_000.0, 0.6, 0.9,
            )
        );
    }

    #[test]
    fn outage_plan_respects_tolerance() {
        let placement = vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ];
        // Americas-West holds two placement members: beyond f = 1.
        assert!(correlated_outage_plan(
            Region::AmericasWest, &placement, 1, 1_000.0, 3_000.0, 0
        )
        .is_none());
        // Asia-Pacific holds one: allowed, and the plan crashes the whole region.
        let plan = correlated_outage_plan(Region::AsiaPacific, &placement, 1, 1_000.0, 3_000.0, 0)
            .expect("within tolerance");
        let crashes = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CrashDc { .. }))
            .count();
        assert_eq!(crashes, 3, "all three APAC DCs crash together");
        // Every crash has its restart.
        let restarts = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::RestartDc { .. }))
            .count();
        assert_eq!(restarts, crashes);
    }

    #[test]
    fn storm_times_stay_in_the_middle_half_and_are_ordered() {
        for flips in 1..6 {
            let times = reconfig_storm_times(10_000.0, flips);
            assert_eq!(times.len(), flips);
            for w in times.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(times.first().unwrap() >= &2_500.0);
            assert!(times.last().unwrap() <= &7_500.0);
        }
    }

    #[test]
    fn storm_plan_attacks_the_union_within_f() {
        let old = vec![GcpLocation::Tokyo.dc(), GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()];
        let new = vec![
            GcpLocation::Singapore.dc(),
            GcpLocation::Frankfurt.dc(),
            GcpLocation::Virginia.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ];
        let universe: Vec<DcId> = Region::ALL.iter().flat_map(|r| r.dcs()).collect();
        for seed in 0..16 {
            let plan = reconfig_storm_plan(
                &[old.clone(), new.clone()],
                universe.clone(),
                1,
                9_000.0,
                seed,
            );
            assert!(plan.max_concurrent_faulted() <= 1, "seed {seed}: {plan:?}");
            assert_eq!(
                plan,
                reconfig_storm_plan(&[old.clone(), new.clone()], universe.clone(), 1, 9_000.0, seed)
            );
        }
    }

    #[test]
    fn region_pick_is_deterministic_and_eligible() {
        let placement = vec![
            GcpLocation::Singapore.dc(),
            GcpLocation::Frankfurt.dc(),
            GcpLocation::Virginia.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ];
        for seed in 0..16 {
            let r = pick_outage_region(&placement, 1, seed).expect("eligible region exists");
            assert_eq!(r, pick_outage_region(&placement, 1, seed).unwrap());
            let overlap = r.dcs().iter().filter(|d| placement.contains(d)).count();
            assert!(overlap <= 1, "{r:?} overlaps placement by {overlap}");
        }
    }
}
