//! Seed-driven generation of adversarial [`FaultPlan`]s.
//!
//! The stress suites need *many* different fault schedules, each reproducible from a
//! single seed and each guaranteed to stay within a configuration's fault tolerance
//! `f` — LEGOStore promises linearizability unconditionally but *liveness* only while
//! at most `f` data centers are faulted (paper §3.2). [`generate_fault_plan`] turns a
//! [`FaultPlanSpec`] plus a seed into a schedule of fault *windows* (crash + restart,
//! partition + heal, slow + restore, lossy link + clear) whose overlap never exceeds
//! `max_faulty` simultaneously-faulted DCs, so `plan.max_concurrent_faulted() <=
//! spec.max_faulty` holds by construction.
//!
//! Determinism: the only randomness is the shared `StdRng` stream, so one seed yields
//! one byte-identical plan forever (the offline shim's `StdRng` is SplitMix64, not the
//! real `rand`'s ChaCha12 — same caveat as the trace generator, see
//! [`crate::trace::TraceGenerator`]).

use legostore_types::{DcId, FaultEvent, FaultKind, FaultPlan};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which fault kinds a generated plan may contain.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMenu {
    /// Whole-DC crash + restart windows.
    pub crashes: bool,
    /// Partitions isolating one DC from the rest (symmetric or asymmetric).
    pub partitions: bool,
    /// Slow-DC degradation windows.
    pub slow: bool,
    /// Per-link probabilistic drop/duplication windows.
    pub lossy_links: bool,
}

impl Default for FaultMenu {
    fn default() -> Self {
        FaultMenu { crashes: true, partitions: true, slow: true, lossy_links: true }
    }
}

/// Parameters of a generated fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// Data centers eligible to be faulted (typically the key's placement).
    pub dcs: Vec<DcId>,
    /// Every data center of the deployment, clients included. Partitions isolate a
    /// victim from the whole universe (not just from the placement) — protocol traffic
    /// is client ↔ server, so a cut that only severed placement-internal links would be
    /// invisible to clients hosted elsewhere. Lossy-link peers are drawn from here too.
    /// [`FaultPlanSpec::for_placement`] defaults it to `dcs`.
    pub universe: Vec<DcId>,
    /// Maximum number of simultaneously-faulted DCs (the configuration's `f`).
    pub max_faulty: usize,
    /// Length of the schedule in model milliseconds.
    pub duration_ms: f64,
    /// Fault windows to *attempt*; candidates that would breach `max_faulty` are
    /// discarded, so the plan may contain fewer.
    pub windows: usize,
    /// Minimum window length (model ms).
    pub min_window_ms: f64,
    /// Maximum window length (model ms).
    pub max_window_ms: f64,
    /// Fault kinds to draw from.
    pub menu: FaultMenu,
    /// Extra per-message delay of a slow-DC window (model ms).
    pub slow_extra_ms: f64,
    /// Per-message drop probability of a lossy-link window.
    pub drop_prob: f64,
    /// Per-message duplication probability of a lossy-link window.
    pub dup_prob: f64,
    /// Extra per-message delay of a lossy-link window (model ms).
    pub link_extra_ms: f64,
}

impl FaultPlanSpec {
    /// A spec with sensible defaults for stressing `dcs` with tolerance `max_faulty`
    /// over `duration_ms`: three windows of 0.5–2.5 s, every fault kind enabled.
    pub fn for_placement(dcs: Vec<DcId>, max_faulty: usize, duration_ms: f64) -> FaultPlanSpec {
        FaultPlanSpec {
            universe: dcs.clone(),
            dcs,
            max_faulty,
            duration_ms,
            windows: 3,
            min_window_ms: 500.0,
            max_window_ms: 2_500.0,
            menu: FaultMenu::default(),
            slow_extra_ms: 150.0,
            drop_prob: 0.25,
            dup_prob: 0.15,
            link_extra_ms: 20.0,
        }
    }
}

/// One accepted fault window during generation.
struct Window {
    start_ms: f64,
    end_ms: f64,
}

/// Generates a deterministic fault schedule from `spec` and `seed`.
///
/// Guarantees:
///
/// * same `(spec, seed)` ⇒ byte-identical [`FaultPlan`] (events and seed);
/// * every window closes (crash→restart, partition→heal, slow→restore, link→clear) at
///   or before `spec.duration_ms`;
/// * at most `spec.max_faulty` windows are active at any instant, so
///   [`FaultPlan::max_concurrent_faulted`] never exceeds `spec.max_faulty`.
pub fn generate_fault_plan(spec: &FaultPlanSpec, seed: u64) -> FaultPlan {
    assert!(!spec.dcs.is_empty(), "need at least one fault candidate");
    assert!(spec.max_window_ms >= spec.min_window_ms);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<FaultEvent> = Vec::new();
    let mut accepted: Vec<Window> = Vec::new();
    let mut next_partition_id = 0u32;
    let kinds: Vec<u8> = [
        (spec.menu.crashes, 0u8),
        (spec.menu.partitions, 1),
        (spec.menu.slow, 2),
        (spec.menu.lossy_links, 3),
    ]
    .iter()
    .filter(|(on, _)| *on)
    .map(|(_, k)| *k)
    .collect();
    if kinds.is_empty() || spec.max_faulty == 0 {
        return FaultPlan { seed, events };
    }
    for _ in 0..spec.windows {
        let latest_start = (spec.duration_ms - spec.min_window_ms).max(0.0);
        let start_ms = rng.gen_range(0.0..latest_start.max(f64::EPSILON));
        let len_ms = rng.gen_range(spec.min_window_ms..=spec.max_window_ms);
        let end_ms = (start_ms + len_ms).min(spec.duration_ms);
        // A window needs a free fault slot for its whole extent (1 ms guard band so a
        // repair and the next fault never share an instant). Checking *every* window
        // against the cap — even lossy-link ones that cannot detach a DC — keeps the
        // bound conservative.
        let overlapping = accepted
            .iter()
            .filter(|w| start_ms < w.end_ms + 1.0 && w.start_ms < end_ms + 1.0)
            .count();
        if overlapping >= spec.max_faulty {
            continue;
        }
        let victim = spec.dcs[rng.gen_range(0..spec.dcs.len())];
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let (fault, repair) = match kind {
            0 => (
                FaultKind::CrashDc { dc: victim },
                FaultKind::RestartDc { dc: victim },
            ),
            1 => {
                let id = next_partition_id;
                next_partition_id += 1;
                let rest: Vec<DcId> =
                    spec.universe.iter().copied().filter(|d| *d != victim).collect();
                if rest.is_empty() {
                    continue; // cannot partition a 1-DC universe
                }
                let symmetric = rng.gen::<f64>() < 0.5;
                (
                    FaultKind::Partition { id, left: vec![victim], right: rest, symmetric },
                    FaultKind::Heal { id },
                )
            }
            2 => (
                FaultKind::SlowDc { dc: victim, extra_ms: spec.slow_extra_ms },
                FaultKind::RestoreDc { dc: victim },
            ),
            _ => {
                let others: Vec<DcId> =
                    spec.universe.iter().copied().filter(|d| *d != victim).collect();
                if others.is_empty() {
                    continue;
                }
                let peer = others[rng.gen_range(0..others.len())];
                (
                    FaultKind::LinkFault {
                        from: victim,
                        to: peer,
                        drop_prob: spec.drop_prob,
                        dup_prob: spec.dup_prob,
                        extra_ms: spec.link_extra_ms,
                    },
                    FaultKind::ClearLink { from: victim, to: peer },
                )
            }
        };
        events.push(FaultEvent { at_ms: start_ms, kind: fault });
        events.push(FaultEvent { at_ms: end_ms, kind: repair });
        accepted.push(Window { start_ms, end_ms });
    }
    FaultPlan { seed, events }.sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcs(n: u16) -> Vec<DcId> {
        (0..n).map(DcId).collect()
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let spec = FaultPlanSpec::for_placement(dcs(5), 1, 20_000.0);
        let a = generate_fault_plan(&spec, 7);
        let b = generate_fault_plan(&spec, 7);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical schedules");
        let c = generate_fault_plan(&spec, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn windows_respect_the_concurrency_cap_and_close() {
        for seed in 0..25 {
            let mut spec = FaultPlanSpec::for_placement(dcs(5), 1, 15_000.0);
            spec.windows = 8; // many attempts, so rejection actually triggers
            let plan = generate_fault_plan(&spec, seed);
            assert!(
                plan.max_concurrent_faulted() <= 1,
                "seed {seed} breached f=1: {plan:?}"
            );
            // Events pair up: every fault has a repair, all within the duration.
            assert_eq!(plan.events.len() % 2, 0);
            for ev in &plan.events {
                assert!(ev.at_ms >= 0.0 && ev.at_ms <= 15_000.0);
            }
        }
    }

    #[test]
    fn higher_tolerance_allows_overlap() {
        let mut spec = FaultPlanSpec::for_placement(dcs(7), 2, 10_000.0);
        spec.windows = 20;
        let mut saw_two = false;
        for seed in 0..20 {
            let plan = generate_fault_plan(&spec, seed);
            let m = plan.max_concurrent_faulted();
            assert!(m <= 2, "seed {seed}: {m}");
            saw_two |= m == 2;
        }
        assert!(saw_two, "with f=2 and 20 attempts some schedule should overlap");
    }

    #[test]
    fn menu_restricts_generated_kinds() {
        let mut spec = FaultPlanSpec::for_placement(dcs(5), 1, 20_000.0);
        spec.menu = FaultMenu { crashes: true, partitions: false, slow: false, lossy_links: false };
        spec.windows = 6;
        let plan = generate_fault_plan(&spec, 3);
        assert!(!plan.is_empty());
        for ev in &plan.events {
            assert!(
                matches!(ev.kind, FaultKind::CrashDc { .. } | FaultKind::RestartDc { .. }),
                "{ev:?}"
            );
        }
        spec.menu = FaultMenu { crashes: false, partitions: false, slow: false, lossy_links: false };
        assert!(generate_fault_plan(&spec, 3).is_empty(), "empty menu ⇒ empty plan");
    }

    #[test]
    fn zero_tolerance_generates_nothing() {
        let spec = FaultPlanSpec {
            max_faulty: 0,
            ..FaultPlanSpec::for_placement(dcs(3), 1, 5_000.0)
        };
        assert!(generate_fault_plan(&spec, 1).is_empty());
    }
}
