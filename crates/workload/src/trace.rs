//! Open-loop Poisson request trace generation.
//!
//! The paper's workload generator "emulates a user application with an assumption that it
//! sends requests as per a Poisson process" (§4.1). [`TraceGenerator`] turns a
//! [`WorkloadSpec`] into a timestamped request sequence: exponential inter-arrival times at
//! the aggregate rate, request origins drawn from the client distribution, and GET/PUT drawn
//! from the read ratio.

use crate::spec::WorkloadSpec;
use legostore_types::{DcId, OpKind};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One generated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Arrival time in milliseconds from the start of the trace.
    pub time_ms: f64,
    /// The DC in/near which the issuing user resides.
    pub origin: DcId,
    /// GET or PUT.
    pub kind: OpKind,
    /// Index of the key within the key group (0 for single-key workloads).
    pub key_index: usize,
    /// Object size in bytes (PUT payload / expected GET response size).
    pub object_size: u64,
}

/// Deterministic (seeded) Poisson trace generator.
///
/// Reproducibility caveat: the offline build's `StdRng` is a SplitMix64 shim, not the
/// real `rand` ChaCha12, so a given seed yields a different trace than upstream `rand`
/// would (stable across runs and platforms, though — the golden fingerprints in
/// `crates/workload/tests/determinism.rs` pin the exact stream; see `shims/README.md`).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    num_keys: usize,
    rng: StdRng,
}

impl TraceGenerator {
    /// Creates a generator for `spec` spreading requests uniformly over `num_keys` keys.
    pub fn new(spec: WorkloadSpec, num_keys: usize, seed: u64) -> Self {
        assert!(num_keys >= 1, "need at least one key");
        TraceGenerator {
            spec,
            num_keys,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates all requests arriving within `duration_ms`.
    pub fn generate(&mut self, duration_ms: f64) -> Vec<Request> {
        let mut out = Vec::new();
        if self.spec.arrival_rate <= 0.0 {
            return out;
        }
        let rate_per_ms = self.spec.arrival_rate / 1000.0;
        let mut t = self.next_exponential(rate_per_ms);
        while t < duration_ms {
            out.push(self.make_request(t));
            t += self.next_exponential(rate_per_ms);
        }
        out
    }

    /// Generates exactly `count` requests (useful for fixed-size experiments).
    pub fn generate_count(&mut self, count: usize) -> Vec<Request> {
        let mut out = Vec::with_capacity(count);
        let rate_per_ms = self.spec.arrival_rate.max(1e-9) / 1000.0;
        let mut t = 0.0;
        for _ in 0..count {
            t += self.next_exponential(rate_per_ms);
            out.push(self.make_request(t));
        }
        out
    }

    fn make_request(&mut self, time_ms: f64) -> Request {
        let kind = if self.rng.gen::<f64>() < self.spec.read_ratio {
            OpKind::Get
        } else {
            OpKind::Put
        };
        let origin = self.sample_origin();
        let key_index = if self.num_keys == 1 {
            0
        } else {
            self.rng.gen_range(0..self.num_keys)
        };
        Request {
            time_ms,
            origin,
            kind,
            key_index,
            object_size: self.spec.object_size,
        }
    }

    fn sample_origin(&mut self) -> DcId {
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (dc, frac) in &self.spec.client_distribution {
            acc += frac;
            if u <= acc {
                return *dc;
            }
        }
        self.spec
            .client_distribution
            .last()
            .map(|(d, _)| *d)
            .unwrap_or(DcId(0))
    }

    fn next_exponential(&mut self, rate_per_ms: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / rate_per_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn spec(rate: f64, rho: f64) -> WorkloadSpec {
        let mut s = WorkloadSpec::example();
        s.arrival_rate = rate;
        s.read_ratio = rho;
        s.client_distribution = vec![(DcId(0), 0.3), (DcId(1), 0.7)];
        s
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let mut g1 = TraceGenerator::new(spec(100.0, 0.5), 4, 7);
        let mut g2 = TraceGenerator::new(spec(100.0, 0.5), 4, 7);
        assert_eq!(g1.generate(10_000.0), g2.generate(10_000.0));
        let mut g3 = TraceGenerator::new(spec(100.0, 0.5), 4, 8);
        assert_ne!(g1.generate(10_000.0), g3.generate(10_000.0));
    }

    #[test]
    fn arrival_rate_is_respected_on_average() {
        let mut g = TraceGenerator::new(spec(200.0, 0.5), 1, 42);
        let reqs = g.generate(60_000.0); // one minute at 200 req/s ≈ 12000 requests
        let expected = 200.0 * 60.0;
        assert!(
            (reqs.len() as f64 - expected).abs() < expected * 0.1,
            "got {} requests, expected ≈{}",
            reqs.len(),
            expected
        );
        // Timestamps are sorted and within the window.
        for w in reqs.windows(2) {
            assert!(w[0].time_ms <= w[1].time_ms);
        }
        assert!(reqs.last().unwrap().time_ms < 60_000.0);
    }

    #[test]
    fn read_ratio_and_origin_mix_are_respected() {
        let mut g = TraceGenerator::new(spec(500.0, 0.8), 1, 3);
        let reqs = g.generate(120_000.0);
        let gets = reqs.iter().filter(|r| r.kind.is_get()).count() as f64;
        let frac = gets / reqs.len() as f64;
        assert!((frac - 0.8).abs() < 0.03, "GET fraction {frac}");
        let at1 = reqs.iter().filter(|r| r.origin == DcId(1)).count() as f64;
        assert!((at1 / reqs.len() as f64 - 0.7).abs() < 0.03);
    }

    #[test]
    fn zero_rate_produces_empty_trace() {
        let mut g = TraceGenerator::new(spec(0.0, 0.5), 1, 3);
        assert!(g.generate(1000.0).is_empty());
    }

    #[test]
    fn generate_count_produces_exactly_count() {
        let mut g = TraceGenerator::new(spec(50.0, 0.5), 8, 3);
        let reqs = g.generate_count(1000);
        assert_eq!(reqs.len(), 1000);
        assert!(reqs.iter().all(|r| r.key_index < 8));
        assert!(reqs.iter().any(|r| r.key_index != reqs[0].key_index));
    }
}
