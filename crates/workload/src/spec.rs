//! The per-key workload specification consumed by the optimizer and the generators.

use legostore_types::DcId;
use serde::{Deserialize, Serialize};

/// Read/write mix presets used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadRatio {
    /// High-read, 30 GETs per PUT (ρ ≈ 0.968).
    HighRead,
    /// Balanced, 1 GET per PUT (ρ = 0.5).
    ReadWrite,
    /// High-write, 1 GET per 30 PUTs (ρ ≈ 0.032).
    HighWrite,
}

impl ReadRatio {
    /// The three presets in the paper's order (HW, RW, HR is used in figures; we expose
    /// them HR, RW, HW to match §4.1's listing).
    pub const ALL: [ReadRatio; 3] = [ReadRatio::HighRead, ReadRatio::ReadWrite, ReadRatio::HighWrite];

    /// The fraction of operations that are GETs.
    pub fn rho(self) -> f64 {
        match self {
            ReadRatio::HighRead => 30.0 / 31.0,
            ReadRatio::ReadWrite => 0.5,
            ReadRatio::HighWrite => 1.0 / 31.0,
        }
    }

    /// Short label used in figures ("HR", "RW", "HW").
    pub fn label(self) -> &'static str {
        match self {
            ReadRatio::HighRead => "HR",
            ReadRatio::ReadWrite => "RW",
            ReadRatio::HighWrite => "HW",
        }
    }
}

/// Workload features for one key (or a group of keys with similar features), mirroring the
/// optimizer inputs of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable identifier.
    pub name: String,
    /// Average object size `o_g` in bytes.
    pub object_size: u64,
    /// Metadata size `o_m` in bytes exchanged per phase (the paper rounds to 100 B).
    pub metadata_size: u64,
    /// Fraction of requests that are GETs (ρ_g ∈ [0, 1]).
    pub read_ratio: f64,
    /// Aggregate arrival rate λ_g in requests/second.
    pub arrival_rate: f64,
    /// Total bytes stored by this key group (the datastore-size dimension of the grid);
    /// drives the storage-cost component.
    pub total_data_bytes: u64,
    /// Fraction of requests originating in/near each DC (α_ig); must sum to 1.
    pub client_distribution: Vec<(DcId, f64)>,
    /// GET latency SLO in milliseconds (99th percentile, modeled as worst case).
    pub slo_get_ms: f64,
    /// PUT latency SLO in milliseconds.
    pub slo_put_ms: f64,
    /// Number of simultaneous DC failures to tolerate.
    pub fault_tolerance: usize,
}

impl WorkloadSpec {
    /// A small, fully-specified default useful as a starting point in examples and tests:
    /// 1 KB objects, RW mix, 200 req/s, 1 TB of data, clients in Tokyo-equivalent DC 0,
    /// 1 s SLOs, f = 1.
    pub fn example() -> Self {
        WorkloadSpec {
            name: "example".into(),
            object_size: 1024,
            metadata_size: 100,
            read_ratio: 0.5,
            arrival_rate: 200.0,
            total_data_bytes: 1 << 40,
            client_distribution: vec![(DcId(0), 1.0)],
            slo_get_ms: 1000.0,
            slo_put_ms: 1000.0,
            fault_tolerance: 1,
        }
    }

    /// GET arrival rate in requests/second.
    pub fn get_rate(&self) -> f64 {
        self.arrival_rate * self.read_ratio
    }

    /// PUT arrival rate in requests/second.
    pub fn put_rate(&self) -> f64 {
        self.arrival_rate * (1.0 - self.read_ratio)
    }

    /// Arrival rate of requests originating at `dc` (λ_g · α_ig).
    pub fn rate_at(&self, dc: DcId) -> f64 {
        self.client_distribution
            .iter()
            .find(|(d, _)| *d == dc)
            .map(|(_, frac)| self.arrival_rate * frac)
            .unwrap_or(0.0)
    }

    /// The client DCs with non-zero request fractions.
    pub fn client_dcs(&self) -> Vec<DcId> {
        self.client_distribution
            .iter()
            .filter(|(_, f)| *f > 0.0)
            .map(|(d, _)| *d)
            .collect()
    }

    /// Checks internal consistency (fractions sum to ~1, ratios in range, positive sizes).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err(format!("read_ratio {} out of [0,1]", self.read_ratio));
        }
        if self.arrival_rate < 0.0 {
            return Err("arrival_rate must be non-negative".into());
        }
        if self.object_size == 0 {
            return Err("object_size must be positive".into());
        }
        if self.client_distribution.is_empty() {
            return Err("client_distribution must not be empty".into());
        }
        let sum: f64 = self.client_distribution.iter().map(|(_, f)| f).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("client_distribution sums to {sum}, expected 1"));
        }
        if self.client_distribution.iter().any(|(_, f)| *f < 0.0) {
            return Err("client fractions must be non-negative".into());
        }
        if self.slo_get_ms <= 0.0 || self.slo_put_ms <= 0.0 {
            return Err("SLOs must be positive".into());
        }
        Ok(())
    }

    /// Returns a copy with a different arrival rate (used when reacting to load changes).
    pub fn with_arrival_rate(&self, rate: f64) -> Self {
        let mut s = self.clone();
        s.arrival_rate = rate;
        s
    }

    /// Returns a copy with a different client distribution.
    pub fn with_clients(&self, clients: Vec<(DcId, f64)>) -> Self {
        let mut s = self.clone();
        s.client_distribution = clients;
        s
    }

    /// Returns a copy with different latency SLOs.
    pub fn with_slos(&self, get_ms: f64, put_ms: f64) -> Self {
        let mut s = self.clone();
        s.slo_get_ms = get_ms;
        s.slo_put_ms = put_ms;
        s
    }

    /// Returns a copy with a different fault-tolerance target.
    pub fn with_fault_tolerance(&self, f: usize) -> Self {
        let mut s = self.clone();
        s.fault_tolerance = f;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_ratio_presets() {
        assert!((ReadRatio::ReadWrite.rho() - 0.5).abs() < 1e-12);
        assert!(ReadRatio::HighRead.rho() > 0.96);
        assert!(ReadRatio::HighWrite.rho() < 0.04);
        assert_eq!(ReadRatio::HighRead.label(), "HR");
        assert_eq!(ReadRatio::ALL.len(), 3);
    }

    #[test]
    fn example_spec_is_valid() {
        let s = WorkloadSpec::example();
        s.validate().unwrap();
        assert!((s.get_rate() + s.put_rate() - s.arrival_rate).abs() < 1e-9);
        assert_eq!(s.rate_at(DcId(0)), 200.0);
        assert_eq!(s.rate_at(DcId(3)), 0.0);
        assert_eq!(s.client_dcs(), vec![DcId(0)]);
    }

    #[test]
    fn validation_catches_errors() {
        let mut s = WorkloadSpec::example();
        s.read_ratio = 1.5;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::example();
        s.client_distribution = vec![(DcId(0), 0.4), (DcId(1), 0.4)];
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::example();
        s.client_distribution.clear();
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::example();
        s.object_size = 0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::example();
        s.slo_get_ms = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn with_builders_modify_copies() {
        let s = WorkloadSpec::example();
        let s2 = s
            .with_arrival_rate(800.0)
            .with_slos(200.0, 300.0)
            .with_fault_tolerance(2)
            .with_clients(vec![(DcId(1), 0.5), (DcId(2), 0.5)]);
        assert_eq!(s.arrival_rate, 200.0);
        assert_eq!(s2.arrival_rate, 800.0);
        assert_eq!(s2.slo_get_ms, 200.0);
        assert_eq!(s2.fault_tolerance, 2);
        assert_eq!(s2.client_dcs().len(), 2);
        s2.validate().unwrap();
    }
}
