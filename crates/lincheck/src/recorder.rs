//! Recording histories from a running store.
//!
//! The threaded runtime and the simulator call [`HistoryRecorder::record_get`] /
//! [`HistoryRecorder::record_put`] around every completed user operation. Histories are kept
//! per key (linearizability is compositional, so each key is checked independently) and
//! values are reduced to 64-bit fingerprints, which is sufficient because the workloads
//! write values that are distinct whenever their fingerprints are distinct.

use crate::history::{CheckOutcome, History, Operation};
use std::collections::HashMap;
use std::sync::Mutex;

/// FNV-1a fingerprint of a byte string, used to map stored values to the `u64` domain the
/// checker works over.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Thread-safe, per-key history collector.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    inner: Mutex<HashMap<String, History>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Declares a key and the fingerprint of its initial value (CREATE).
    pub fn register_key(&self, key: &str, initial_value: u64) {
        let mut map = self.inner.lock().unwrap();
        map.entry(key.to_string())
            .or_insert_with(|| History::new(initial_value));
    }

    /// Records a completed GET that observed `value_fp`.
    pub fn record_get(&self, key: &str, client: u32, value_fp: u64, invoke: u64, ret: u64) {
        let mut map = self.inner.lock().unwrap();
        map.entry(key.to_string())
            .or_insert_with(|| History::new(0))
            .push(Operation::read(client, value_fp, invoke, ret));
    }

    /// Records a completed PUT of `value_fp`.
    pub fn record_put(&self, key: &str, client: u32, value_fp: u64, invoke: u64, ret: u64) {
        let mut map = self.inner.lock().unwrap();
        map.entry(key.to_string())
            .or_insert_with(|| History::new(0))
            .push(Operation::write(client, value_fp, invoke, ret));
    }

    /// Number of operations recorded for `key`.
    pub fn len(&self, key: &str) -> usize {
        self.inner
            .lock()
            .unwrap()
            .get(key)
            .map(|h| h.len())
            .unwrap_or(0)
    }

    /// True if nothing has been recorded for `key`.
    pub fn is_empty(&self, key: &str) -> bool {
        self.len(key) == 0
    }

    /// Returns a snapshot of the history for `key`, if any.
    pub fn history(&self, key: &str) -> Option<History> {
        self.inner.lock().unwrap().get(key).cloned()
    }

    /// Keys with at least one recorded operation or registration.
    pub fn keys(&self) -> Vec<String> {
        let mut ks: Vec<String> = self.inner.lock().unwrap().keys().cloned().collect();
        ks.sort();
        ks
    }

    /// Checks every recorded key and returns the keys that failed (empty ⇒ all linearizable).
    pub fn check_all(&self) -> Vec<(String, CheckOutcome)> {
        self.check_all_within(u64::MAX).0
    }

    /// Like [`HistoryRecorder::check_all`], but each key's search gets a step budget
    /// (see [`History::check_within`]). Returns `(failures, undecided)`: keys whose
    /// search exhausted the budget land in `undecided` — neither passed nor failed —
    /// instead of stalling the whole sweep on one adversarial interleaving. Both lists
    /// are sorted, so the result is deterministic regardless of map iteration order.
    pub fn check_all_within(
        &self,
        max_steps_per_key: u64,
    ) -> (Vec<(String, CheckOutcome)>, Vec<String>) {
        let map = self.inner.lock().unwrap();
        let mut failures = Vec::new();
        let mut undecided = Vec::new();
        for (key, history) in map.iter() {
            match history.check_within(max_steps_per_key) {
                None => undecided.push(key.clone()),
                Some(outcome) if !outcome.is_ok() => failures.push((key.clone(), outcome)),
                Some(_) => {}
            }
        }
        failures.sort_by(|a, b| a.0.cmp(&b.0));
        undecided.sort();
        (failures, undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_values() {
        assert_ne!(fingerprint(b"a"), fingerprint(b"b"));
        assert_eq!(fingerprint(b"hello"), fingerprint(b"hello"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }

    #[test]
    fn recorder_partitions_by_key_and_checks() {
        let rec = HistoryRecorder::new();
        rec.register_key("x", fingerprint(b"init"));
        rec.record_put("x", 1, 10, 0, 5);
        rec.record_get("x", 2, 10, 6, 8);
        rec.record_put("y", 1, 99, 0, 1);
        rec.record_get("y", 2, 99, 2, 3);
        assert_eq!(rec.len("x"), 2);
        assert_eq!(rec.len("y"), 2);
        assert!(rec.is_empty("z"));
        assert_eq!(rec.keys(), vec!["x".to_string(), "y".to_string()]);
        assert!(rec.check_all().is_empty());
    }

    #[test]
    fn recorder_flags_non_linearizable_key() {
        let rec = HistoryRecorder::new();
        rec.record_put("bad", 1, 1, 0, 1);
        rec.record_get("bad", 2, 0, 5, 6); // stale read of the default 0 after put(1) finished
        rec.record_put("good", 1, 1, 0, 1);
        rec.record_get("good", 2, 1, 5, 6);
        let failures = rec.check_all();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "bad");
        assert!(!failures[0].1.is_ok());
    }

    #[test]
    fn budgeted_check_separates_undecided_from_failed() {
        let rec = HistoryRecorder::new();
        // "wide": eight concurrent writes force the search to actually branch.
        for c in 0..8u32 {
            rec.record_put("wide", c, 100 + u64::from(c), 0, 100);
        }
        rec.record_get("wide", 9, 103, 200, 201);
        // "bad": a stale read that any budget large enough to run at all will catch.
        rec.record_put("bad", 1, 1, 0, 1);
        rec.record_get("bad", 2, 0, 5, 6);
        let (failures, undecided) = rec.check_all_within(1);
        assert_eq!(undecided, vec!["bad".to_string(), "wide".to_string()]);
        assert!(failures.is_empty());
        let (failures, undecided) = rec.check_all_within(1_000_000);
        assert!(undecided.is_empty());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "bad");
    }

    #[test]
    fn history_snapshot_is_a_copy() {
        let rec = HistoryRecorder::new();
        rec.record_put("k", 1, 7, 0, 1);
        let snap = rec.history("k").unwrap();
        rec.record_get("k", 2, 7, 2, 3);
        assert_eq!(snap.len(), 1);
        assert_eq!(rec.history("k").unwrap().len(), 2);
        assert!(rec.history("missing").is_none());
    }
}
