//! Single-register histories and the linearizability decision procedure.

use std::collections::HashSet;

/// What an operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationKind {
    /// A read that returned `value`.
    Read {
        /// Value observed by the read.
        value: u64,
    },
    /// A write of `value`.
    Write {
        /// Value installed by the write.
        value: u64,
    },
}

/// One completed operation in a history.
///
/// Times are arbitrary monotonically comparable integers (the recorder uses nanoseconds for
/// the threaded runtime and virtual microseconds for the simulator). `invoke < ret` must
/// hold for every operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Identifier of the client that issued the operation (informational).
    pub client: u32,
    /// Operation kind and value.
    pub kind: OperationKind,
    /// Invocation timestamp.
    pub invoke: u64,
    /// Response timestamp.
    pub ret: u64,
}

impl Operation {
    /// Convenience constructor for a read.
    pub fn read(client: u32, value: u64, invoke: u64, ret: u64) -> Self {
        Operation {
            client,
            kind: OperationKind::Read { value },
            invoke,
            ret,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(client: u32, value: u64, invoke: u64, ret: u64) -> Self {
        Operation {
            client,
            kind: OperationKind::Write { value },
            invoke,
            ret,
        }
    }
}

/// Outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// A witness linearization order exists; the indices are positions in the (sorted)
    /// operation list in linearization order.
    Linearizable { order: Vec<usize> },
    /// No linearization exists.
    NotLinearizable,
    /// The history was malformed (an operation returned before it was invoked).
    Malformed { index: usize },
}

impl CheckOutcome {
    /// True when the history is linearizable.
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckOutcome::Linearizable { .. })
    }
}

/// A history of completed operations over one register.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The register's value before any write in the history (LEGOStore's CREATE installs an
    /// initial value; reads may legitimately observe it).
    pub initial_value: u64,
    /// The completed operations, in any order.
    pub operations: Vec<Operation>,
}

impl History {
    /// Creates an empty history with the given initial register value.
    pub fn new(initial_value: u64) -> Self {
        History {
            initial_value,
            operations: Vec::new(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True if the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Decides linearizability of the history.
    ///
    /// The search linearizes operations one at a time. An operation is a candidate for the
    /// next linearization point iff every not-yet-linearized operation's response is not
    /// strictly before its invocation (i.e. nothing pending precedes it in real time). Reads
    /// must observe the current register value; writes update it. The search memoizes
    /// visited `(linearized-set, register-value)` states, which keeps it fast on the
    /// register histories LEGOStore produces.
    pub fn check(&self) -> CheckOutcome {
        self.check_within(u64::MAX)
            .expect("an unbounded search cannot exhaust its budget")
    }

    /// Budgeted variant of [`History::check`]: gives up after `max_steps` search steps.
    ///
    /// Returns `None` when the budget runs out before the search decides — the history is
    /// then *undecided*, not passed and not failed. Linearizing one operation costs one
    /// step, so any history the search decides without backtracking (the overwhelmingly
    /// common case) finishes within `2 × len` steps; a budget in the millions only trips
    /// on genuinely adversarial interleavings, e.g. hundreds of concurrent writes on one
    /// register, where the DFS would otherwise run for minutes. Callers that sweep many
    /// histories (the campaign engine) use this to bound worst-case wall time
    /// deterministically: the step count is a pure function of the history, so the same
    /// input always decides — or gives up — identically.
    pub fn check_within(&self, max_steps: u64) -> Option<CheckOutcome> {
        for (i, op) in self.operations.iter().enumerate() {
            if op.ret < op.invoke {
                return Some(CheckOutcome::Malformed { index: i });
            }
        }
        let n = self.operations.len();
        if n == 0 {
            return Some(CheckOutcome::Linearizable { order: vec![] });
        }
        // Sort by invocation time; the witness order refers to indices in this sorted list.
        let mut ops: Vec<Operation> = self.operations.clone();
        ops.sort_by_key(|o| (o.invoke, o.ret));

        let words = n.div_ceil(64);
        let mut linearized = vec![0u64; words];
        let mut memo: HashSet<(Vec<u64>, u64)> = HashSet::new();
        let mut order: Vec<usize> = Vec::with_capacity(n);

        fn is_set(bits: &[u64], i: usize) -> bool {
            bits[i / 64] & (1u64 << (i % 64)) != 0
        }
        fn set(bits: &mut [u64], i: usize) {
            bits[i / 64] |= 1u64 << (i % 64);
        }
        fn clear(bits: &mut [u64], i: usize) {
            bits[i / 64] &= !(1u64 << (i % 64));
        }

        // Iterative DFS with an explicit stack of (value-before, next-candidate-index).
        struct Frame {
            value: u64,
            next: usize,
        }
        let mut stack: Vec<Frame> = vec![Frame {
            value: self.initial_value,
            next: 0,
        }];

        let mut steps: u64 = 0;
        while let Some(frame_idx) = stack.len().checked_sub(1) {
            steps += 1;
            if steps > max_steps {
                return None;
            }
            if order.len() == n {
                return Some(CheckOutcome::Linearizable { order });
            }
            let value = stack[frame_idx].value;
            let start = stack[frame_idx].next;
            // Earliest response among pending operations: candidates must be invoked before
            // it (otherwise some pending op strictly precedes them in real time).
            let mut min_ret = u64::MAX;
            for (i, op) in ops.iter().enumerate() {
                if !is_set(&linearized, i) {
                    min_ret = min_ret.min(op.ret);
                }
            }
            let mut candidate = None;
            let mut forced = false;
            if start == 0 {
                // A candidate read of the current register value can always be
                // linearized *now* without discarding any witness: candidacy already
                // guarantees every pending operation's response is at or after its
                // invocation (so moving it to the front of any extension respects real
                // time), and a read leaves the register untouched. Committing to it as
                // a forced move — no resume point, the frame fails outright if the
                // branch fails — keeps the search linear on read-heavy histories
                // instead of backtracking over every subset of concurrent same-value
                // reads.
                for (i, op) in ops.iter().enumerate() {
                    if is_set(&linearized, i) {
                        continue;
                    }
                    if op.invoke > min_ret {
                        break;
                    }
                    if op.kind == (OperationKind::Read { value }) {
                        candidate = Some((i, value));
                        forced = true;
                        break;
                    }
                }
            }
            if candidate.is_none() {
                for (i, op) in ops.iter().enumerate().skip(start) {
                    if is_set(&linearized, i) {
                        continue;
                    }
                    if op.invoke > min_ret {
                        // ops is sorted by invocation; nothing later can be a candidate
                        // either.
                        break;
                    }
                    // Check register semantics.
                    let new_value = match op.kind {
                        OperationKind::Read { value: read_v } => {
                            if read_v != value {
                                continue;
                            }
                            value
                        }
                        OperationKind::Write { value: write_v } => write_v,
                    };
                    candidate = Some((i, new_value));
                    break;
                }
            }
            match candidate {
                Some((i, new_value)) => {
                    // Record where to resume in this frame if the branch fails; a
                    // forced move has no alternatives, so its frame resumes past the
                    // end and fails immediately.
                    stack[frame_idx].next = if forced { n } else { i + 1 };
                    set(&mut linearized, i);
                    order.push(i);
                    if memo.contains(&(linearized.clone(), new_value)) {
                        // Already explored an equivalent state; undo immediately.
                        clear(&mut linearized, i);
                        order.pop();
                        continue;
                    }
                    stack.push(Frame {
                        value: new_value,
                        next: 0,
                    });
                }
                None => {
                    // Dead end: remember the state we are abandoning, then backtrack.
                    memo.insert((linearized.clone(), value));
                    stack.pop();
                    if let Some(last) = order.pop() {
                        clear(&mut linearized, last);
                    } else if stack.is_empty() {
                        return Some(CheckOutcome::NotLinearizable);
                    }
                }
            }
        }
        if order.len() == n {
            Some(CheckOutcome::Linearizable { order })
        } else {
            Some(CheckOutcome::NotLinearizable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_linearizable() {
        assert!(History::new(0).check().is_ok());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new(0);
        h.push(Operation::write(1, 10, 0, 1));
        h.push(Operation::read(2, 10, 2, 3));
        h.push(Operation::write(1, 20, 4, 5));
        h.push(Operation::read(2, 20, 6, 7));
        assert!(h.check().is_ok());
    }

    #[test]
    fn read_of_initial_value_is_linearizable() {
        let mut h = History::new(42);
        h.push(Operation::read(1, 42, 0, 1));
        assert!(h.check().is_ok());
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        let mut h = History::new(0);
        h.push(Operation::write(1, 5, 0, 1));
        // Read starts strictly after the write finished but returns the old value.
        h.push(Operation::read(2, 0, 2, 3));
        assert_eq!(h.check(), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn concurrent_read_may_return_old_or_new_value() {
        // Write [0, 10]; read overlapping it may return either 0 or 7.
        for read_value in [0u64, 7] {
            let mut h = History::new(0);
            h.push(Operation::write(1, 7, 0, 10));
            h.push(Operation::read(2, read_value, 5, 6));
            assert!(h.check().is_ok(), "read {read_value} should be allowed");
        }
        // But a value never written is not allowed.
        let mut h = History::new(0);
        h.push(Operation::write(1, 7, 0, 10));
        h.push(Operation::read(2, 99, 5, 6));
        assert_eq!(h.check(), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads around concurrent writes must not observe values in an order
        // contradicting real time: r1 sees the newer write, then r2 (strictly later) sees
        // the older one.
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 0, 100)); // w1, concurrent with everything
        h.push(Operation::write(2, 2, 0, 100)); // w2, concurrent with everything
        h.push(Operation::read(3, 2, 10, 20)); // r1 sees 2
        h.push(Operation::read(3, 1, 30, 40)); // r2 (after r1) sees 1 -> would need w1 after w2
        // This IS linearizable: w2, r1, w1, r2. Check that the checker finds it.
        assert!(h.check().is_ok());

        // Now pin the writes sequentially: w1 finishes before w2 starts; then r1 sees 2 and
        // a later r2 sees 1 — that is a new/old inversion and must be rejected.
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 0, 5));
        h.push(Operation::write(2, 2, 10, 15));
        h.push(Operation::read(3, 2, 20, 25));
        h.push(Operation::read(3, 1, 30, 35));
        assert_eq!(h.check(), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn witness_order_respects_real_time_and_semantics() {
        let mut h = History::new(0);
        h.push(Operation::write(1, 10, 0, 1));
        h.push(Operation::read(2, 10, 2, 3));
        let CheckOutcome::Linearizable { order } = h.check() else {
            panic!("expected linearizable");
        };
        assert_eq!(order.len(), 2);
        // The write must be linearized before the read.
        assert!(order[0] < order[1]);
    }

    #[test]
    fn malformed_history_detected() {
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 10, 5));
        assert!(matches!(h.check(), CheckOutcome::Malformed { index: 0 }));
    }

    #[test]
    fn concurrent_writes_with_reads_on_both_sides() {
        // Classic example: two concurrent writes, one reader sees A then B, another sees B
        // only. Linearizable iff a single order of writes explains both.
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 0, 50));
        h.push(Operation::write(2, 2, 0, 50));
        h.push(Operation::read(3, 1, 60, 61));
        h.push(Operation::read(4, 1, 62, 63));
        assert!(h.check().is_ok());

        // Readers disagreeing on the final state after both writes completed: impossible.
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 0, 50));
        h.push(Operation::write(2, 2, 0, 50));
        h.push(Operation::read(3, 1, 60, 61));
        h.push(Operation::read(4, 2, 62, 63));
        h.push(Operation::read(5, 1, 64, 65));
        assert_eq!(h.check(), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn repeated_values_are_handled() {
        // Writing the same value twice must not confuse the checker.
        let mut h = History::new(0);
        h.push(Operation::write(1, 5, 0, 1));
        h.push(Operation::write(2, 5, 2, 3));
        h.push(Operation::read(3, 5, 4, 5));
        assert!(h.check().is_ok());
    }

    #[test]
    fn larger_concurrent_history_is_checked_quickly() {
        // A broad but linearizable history: 8 writers write distinct values concurrently,
        // then 8 readers all agree on one of them.
        let mut h = History::new(0);
        for c in 0..8u32 {
            h.push(Operation::write(c, 100 + c as u64, 0, 100));
        }
        for c in 0..8u32 {
            h.push(Operation::read(100 + c, 103, 200, 201));
        }
        assert!(h.check().is_ok());
    }

    #[test]
    fn exhausted_budget_reports_undecided_not_a_verdict() {
        // A decidable history under a one-step budget must come back None — never a
        // (wrong) verdict in either direction.
        let mut h = History::new(0);
        for c in 0..8u32 {
            h.push(Operation::write(c, 100 + c as u64, 0, 100));
        }
        h.push(Operation::read(9, 103, 200, 201));
        assert_eq!(h.check_within(1), None);
        // With room to finish, the budgeted and unbounded answers agree.
        assert_eq!(h.check_within(1_000_000), Some(h.check()));
    }

    #[test]
    fn read_between_two_writes_pins_their_order() {
        // w(1) [0,10], r->1 [20,30], w(2) [15,40]: linearizable (w1, r, w2).
        let mut h = History::new(0);
        h.push(Operation::write(1, 1, 0, 10));
        h.push(Operation::read(2, 1, 20, 30));
        h.push(Operation::write(3, 2, 15, 40));
        assert!(h.check().is_ok());

        // But if a later read (after w2 completes) still sees 1 while an even later read
        // sees 2 that's fine; seeing 2 then 1 afterwards is not.
        let mut h2 = h.clone();
        h2.push(Operation::read(4, 2, 50, 55));
        h2.push(Operation::read(5, 1, 60, 65));
        assert_eq!(h2.check(), CheckOutcome::NotLinearizable);
    }
}
