//! Linearizability checking for read/write register histories.
//!
//! The paper verifies its prototype's execution histories with Porcupine (a Go checker).
//! This crate is the Rust substitute: a Wing & Gong style search specialized to read/write
//! registers, with memoization over (set of linearized operations, register state), plus the
//! bookkeeping needed to record histories from a running store.
//!
//! Because linearizability is compositional (Herlihy & Wing), the store checks each key's
//! history independently; [`History::check`] operates on a single register.

pub mod history;
pub mod recorder;

pub use history::{CheckOutcome, History, Operation, OperationKind};
pub use recorder::HistoryRecorder;
