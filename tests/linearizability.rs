//! End-to-end linearizability tests on the threaded deployment: concurrent clients, both
//! protocols, reconfigurations and data-center failures, all checked with the history
//! checker (the role Porcupine plays in the paper's evaluation).

use legostore::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn fast_cluster() -> Cluster {
    Cluster::gcp9(ClusterOptions {
        latency_scale: 0.002,
        op_timeout: Duration::from_millis(300),
        // Logical time: modeled RTT waits collapse to microseconds, so this suite runs in
        // seconds instead of sleeping for most of a minute.
        clock: Clock::virtual_time(),
        ..Default::default()
    })
}

fn abd_config() -> Configuration {
    Configuration::abd_majority(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        1,
    )
}

fn cas_config() -> Configuration {
    Configuration::cas_default(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::Singapore.dc(),
            GcpLocation::Virginia.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        3,
        1,
    )
}

/// Runs `writers` + `readers` concurrent clients against one key and returns the cluster so
/// callers can inspect the recorded history.
fn hammer(cluster: &Cluster, key: &Key, writers: usize, readers: usize, ops_each: usize) {
    let key = Arc::new(key.clone());
    let mut handles = Vec::new();
    let dcs = [
        GcpLocation::Tokyo.dc(),
        GcpLocation::Sydney.dc(),
        GcpLocation::Frankfurt.dc(),
        GcpLocation::Virginia.dc(),
        GcpLocation::Oregon.dc(),
    ];
    for w in 0..writers {
        let mut client = cluster.client(dcs[w % dcs.len()]);
        let key = key.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..ops_each {
                let value = Value::from(format!("w{w}-v{i}").as_str());
                client.put(&key, value).expect("put");
            }
        }));
    }
    for r in 0..readers {
        let mut client = cluster.client(dcs[(r + 2) % dcs.len()]);
        let key = key.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..ops_each {
                client.get(&key).expect("get");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
}

#[test]
fn concurrent_abd_history_is_linearizable() {
    let cluster = fast_cluster();
    let key = Key::from("abd-hammer");
    cluster.install_key(key.clone(), abd_config(), &Value::from("init"));
    hammer(&cluster, &key, 3, 3, 12);
    let recorder = cluster.recorder();
    assert_eq!(recorder.len(key.as_str()), 3 * 12 + 3 * 12);
    let failures = recorder.check_all();
    assert!(failures.is_empty(), "non-linearizable keys: {failures:?}");
    cluster.shutdown();
}

#[test]
fn concurrent_cas_history_is_linearizable() {
    let cluster = fast_cluster();
    let key = Key::from("cas-hammer");
    cluster.install_key(key.clone(), cas_config(), &Value::from("init"));
    hammer(&cluster, &key, 3, 3, 12);
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "non-linearizable keys: {failures:?}");
    cluster.shutdown();
}

#[test]
fn linearizability_holds_across_a_reconfiguration() {
    let cluster = fast_cluster();
    let key = Key::from("moving-key");
    cluster.install_key(key.clone(), abd_config(), &Value::from("init"));

    // Writers and readers keep running while the key is migrated ABD -> CAS.
    let key_arc = Arc::new(key.clone());
    let mut handles = Vec::new();
    for w in 0..2 {
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        let key = key_arc.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                client
                    .put(&key, Value::from(format!("w{w}-{i}").as_str()))
                    .expect("put during reconfig");
            }
        }));
    }
    for _ in 0..2 {
        let mut client = cluster.client(GcpLocation::Virginia.dc());
        let key = key_arc.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                client.get(&key).expect("get during reconfig");
            }
        }));
    }
    // Give the workload a head start, then reconfigure to CAS on different DCs.
    std::thread::sleep(Duration::from_millis(20));
    cluster
        .reconfigure(key.clone(), cas_config())
        .expect("reconfiguration succeeds under load");
    for h in handles {
        h.join().expect("client thread");
    }

    let meta = cluster.metadata_config(&key).unwrap();
    assert_eq!(meta.describe(), "CAS(5,3)");
    assert_eq!(meta.epoch, ConfigEpoch(1));
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "non-linearizable keys: {failures:?}");
    cluster.shutdown();
}

#[test]
fn linearizability_holds_under_a_dc_failure() {
    let cluster = fast_cluster();
    let key = Key::from("failure-key");
    cluster.install_key(key.clone(), abd_config(), &Value::from("init"));

    // Fail one quorum member mid-run; f = 1 so everything must still complete.
    let cluster_ref = &cluster;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            cluster_ref.fail_dc(GcpLocation::Oregon.dc());
        });
        let mut writer = cluster.client(GcpLocation::Tokyo.dc());
        let mut reader = cluster.client(GcpLocation::LosAngeles.dc());
        for i in 0..20 {
            writer
                .put(&key, Value::from(format!("v{i}").as_str()))
                .expect("put survives failure");
            reader.get(&key).expect("get survives failure");
        }
    });
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "non-linearizable keys: {failures:?}");
    cluster.shutdown();
}

#[test]
fn many_keys_partition_independently() {
    let cluster = fast_cluster();
    let mut clients: Vec<StoreClient> = (0..3)
        .map(|i| cluster.client(DcId(i as u16 * 3)))
        .collect();
    for k in 0..6 {
        let key = Key::from(format!("key-{k}").as_str());
        clients[k % 3]
            .create(&key, Value::from(format!("init-{k}").as_str()))
            .unwrap();
    }
    for round in 0..5 {
        for k in 0..6 {
            let key = Key::from(format!("key-{k}").as_str());
            let c = &mut clients[(k + round) % 3];
            c.put(&key, Value::from(format!("{k}:{round}").as_str())).unwrap();
            let v = c.get(&key).unwrap();
            assert_eq!(v, Value::from(format!("{k}:{round}").as_str()));
        }
    }
    assert!(cluster.recorder().check_all().is_empty());
    cluster.shutdown();
}
