//! Reconfiguration-under-fire stress suite.
//!
//! A reconfiguration moves a key between epochs while clients are mid-operation, so the
//! dangerous races all live on the transfer path (paper §4.4–4.5):
//!
//! * a PUT that chose its tag in the old epoch and is redirected must *resume* with
//!   that tag pinned in the new epoch — a rebuilt operation would install the same
//!   value under a fresh tag and linearize twice (readers see new→old→new once a
//!   concurrent writer lands between the transferred copy and the replay);
//! * the controller itself can crash, stall, or race client traffic: within-`f` faults
//!   must only delay the transfer, beyond-`f` faults must stall it with the typed
//!   [`StoreError::ReconfigStalled`] verdict and leave no key half-moved;
//! * servers whose `FinishReconfig` never arrives must not park deferred requests
//!   forever — the epoch lease re-activates the old epoch deterministically.
//!
//! Knobs: `LEGOSTORE_FAULT_ITERS=<n>` widens the threaded-runtime seed sweep (CI's
//! `faults` job runs 100); the discrete-event simulator sweeps [`SIM_SEEDS`] seeds
//! regardless, so the combined default already exceeds 200 seeded schedules.

use legostore::lincheck::recorder::fingerprint;
use legostore::prelude::*;
use legostore::proto::msg::{OpOutcome, OpProgress, Outbound};
use legostore::proto::reconfig::{ControllerProgress, ReconfigController};
use legostore::proto::server::{DcServer, Inbound, Reply};
use legostore::proto::{AbdGet, AbdPut};
use legostore::types::{FaultEvent, FaultKind, FaultPlan};
use legostore_workload::FaultPlanSpec;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// First seed of every sweep (`seed = SEED_BASE + i`), so a failure names its plan.
const SEED_BASE: u64 = 7_000;

/// Simulator seeds per sweep (virtual time makes each run cost milliseconds).
const SIM_SEEDS: u64 = 200;

/// Threaded-runtime seeds when `LEGOSTORE_FAULT_ITERS` is unset.
const DEFAULT_CLUSTER_SEEDS: u64 = 8;

fn cluster_seed_count() -> u64 {
    std::env::var("LEGOSTORE_FAULT_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CLUSTER_SEEDS)
        .max(1)
}

fn abd_config() -> Configuration {
    Configuration::abd_majority(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        1,
    )
}

fn cas_config() -> Configuration {
    Configuration::cas_default(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::Singapore.dc(),
            GcpLocation::Virginia.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        3,
        1,
    )
}

/// A within-`f` seeded fault schedule over the union of the old and the new placement,
/// with the whole nine-DC universe eligible for partition cuts.
fn transfer_plan(old: &Configuration, new: &Configuration, seed: u64, duration_ms: f64) -> FaultPlan {
    let mut union = old.dcs.clone();
    for dc in &new.dcs {
        if !union.contains(dc) {
            union.push(*dc);
        }
    }
    let f = old.f.min(new.f);
    let mut spec = FaultPlanSpec::for_placement(union, f, duration_ms);
    spec.universe = CloudModel::gcp9().dc_ids();
    spec.windows = 2;
    let plan = legostore_workload::generate_fault_plan(&spec, seed);
    assert!(plan.max_concurrent_faulted() <= f, "generator must respect f: {plan:?}");
    plan
}

// ---------------------------------------------------------------------------
// Pinned regression: the cross-epoch double-apply, step by step.
// ---------------------------------------------------------------------------

/// Delivers `msgs` from endpoint `token` straight into the servers and returns the
/// replies addressed back to that endpoint (deterministic single-threaded pump).
fn deliver(
    servers: &mut HashMap<DcId, DcServer>,
    token: u64,
    msgs: Vec<Outbound>,
) -> Vec<(DcId, Reply)> {
    let mut out = Vec::new();
    for m in msgs {
        let dc = m.to;
        let replies = servers.get_mut(&dc).expect("dc exists").handle(Inbound {
            from: token,
            msg_id: 0,
            phase: m.phase,
            key: m.key.clone(),
            epoch: m.epoch,
            msg: m.msg,
        });
        out.extend(replies.into_iter().filter(|r| r.to == token).map(|r| (dc, r)));
    }
    out
}

/// The exact interleaving behind the bug this PR closes, frozen as a regression test:
///
/// 1. a PUT finishes its query phase in epoch 0 (tag `t1` chosen) and lands its write
///    at *one* old-placement server before the client loses the race;
/// 2. the controller transfers the key — the partial write is the highest tag, so the
///    new placement is seeded with `(t1, v1)`;
/// 3. the client learns the new configuration and restarts the PUT there.
///
/// Before the fix, step 3 rebuilt the state machine: it re-queried the new placement,
/// chose a tag above `t1`, and installed the same value a second time — one user write
/// with two linearization points. The fixed client resumes at the write phase with `t1`
/// pinned, so the replay is absorbed as a no-op and every observer agrees on a single
/// application. The assertions below (final tag == pinned tag, readers see `t1`) fail
/// on the rebuild-with-fresh-tag behavior.
#[test]
fn redirected_put_resumes_with_its_old_epoch_tag_pinned() {
    const CLIENT: u64 = 1;
    const CTRL: u64 = 2;
    const READER: u64 = 3;
    let key = Key::from("pinned");
    let old = abd_config();
    let new_base = Configuration::abd_majority(
        vec![
            GcpLocation::Singapore.dc(),
            GcpLocation::Frankfurt.dc(),
            GcpLocation::Virginia.dc(),
        ],
        1,
    );
    let mut servers: HashMap<DcId, DcServer> = CloudModel::gcp9()
        .dc_ids()
        .into_iter()
        .map(|d| (d, DcServer::new(d)))
        .collect();
    let v0 = Value::from("v0");
    let v1 = Value::from("v1");
    for (dc, payload) in DcServer::initial_payloads(&old, &v0) {
        servers.get_mut(&dc).unwrap().install_key(key.clone(), old.clone(), Tag::INITIAL, payload);
    }

    // 1. Query phase completes in epoch 0; the write lands at exactly one server.
    let mut put = AbdPut::new(key.clone(), old.clone(), old.dcs[0], ClientId(9), v1.clone());
    let mut write_msgs = Vec::new();
    for (dc, r) in deliver(&mut servers, CLIENT, put.start()) {
        if let OpProgress::Send(msgs) = put.on_reply(dc, r.phase, r.reply) {
            write_msgs = msgs;
        }
    }
    let t1 = put.chosen_tag().expect("query phase completed");
    assert!(!write_msgs.is_empty(), "the PUT must have advanced to its write phase");
    let partial: Vec<Outbound> = write_msgs.into_iter().filter(|m| m.to == old.dcs[0]).collect();
    deliver(&mut servers, CLIENT, partial);

    // 2. The controller transfers the key; the partial write is what it finds.
    let mut ctl = ReconfigController::new(key.clone(), old.clone(), new_base);
    let mut msgs = ctl.start();
    let outcome = 'transfer: loop {
        assert!(!msgs.is_empty(), "controller stalled in {:?}", ctl.phase());
        for (dc, r) in deliver(&mut servers, CTRL, std::mem::take(&mut msgs)) {
            match ctl.on_reply(dc, r.phase, r.reply) {
                ControllerProgress::Pending => {}
                ControllerProgress::Send(next) => msgs = next,
                ControllerProgress::Done(outcome) => break 'transfer outcome,
            }
        }
    };
    assert_eq!(outcome.highest_tag, t1, "the partial write is the transferred state");
    assert_eq!(outcome.value, v1);
    deliver(&mut servers, CTRL, outcome.finish_messages.clone());

    // 3. The redirected client resumes in epoch 1 with the tag pinned.
    let mut resumed = AbdPut::resume_write(
        key.clone(),
        outcome.new_config.clone(),
        old.dcs[0],
        ClientId(9),
        t1,
        v1.clone(),
    );
    let mut finished = None;
    for (dc, r) in deliver(&mut servers, CLIENT, resumed.start()) {
        if let OpProgress::Done(done) = resumed.on_reply(dc, r.phase, r.reply) {
            finished = Some(done);
        }
    }
    let Some(OpOutcome::PutOk { tag }) = finished else {
        panic!("the resumed PUT must complete in the new epoch: {finished:?}");
    };
    assert_eq!(tag, t1, "one write, one linearization point: the pinned tag survives");

    // Every reader of the new epoch observes the single application at t1 — a rebuilt
    // PUT would have left the value at a fresh tag above t1.
    let mut get = AbdGet::new(key.clone(), outcome.new_config.clone(), outcome.new_config.dcs[0], false);
    let observed;
    'read: loop {
        let replies = deliver(&mut servers, READER, get.start());
        for (dc, r) in replies {
            match get.on_reply(dc, r.phase, r.reply) {
                OpProgress::Done(done) => {
                    observed = Some(done);
                    break 'read;
                }
                OpProgress::Send(msgs) => {
                    for (dc2, r2) in deliver(&mut servers, READER, msgs) {
                        if let OpProgress::Done(done) = get.on_reply(dc2, r2.phase, r2.reply) {
                            observed = Some(done);
                            break 'read;
                        }
                    }
                }
                OpProgress::Pending => {}
            }
        }
    }
    let Some(OpOutcome::GetOk { tag, value, .. }) = observed else {
        panic!("the read must complete: {observed:?}");
    };
    assert_eq!((tag, value), (t1, v1));
}

// ---------------------------------------------------------------------------
// Negative control: the checker must flag the double-apply this PR prevents.
// ---------------------------------------------------------------------------

/// Hand-injects the history a cross-epoch double-apply produces and asserts the
/// linearizability checker rejects it — proving the green sweeps below are meaningful.
///
/// Shape: `put(vA)` is transferred to the new epoch, `put(vB)` lands on top of it,
/// then the restarted old-epoch attempt re-applies `vA` under a fresh tag. Sequential
/// readers observe `vA`, `vB`, `vA` — the second `vA` read has no write to explain it.
#[test]
fn negative_control_cross_epoch_double_apply_is_not_linearizable() {
    let recorder = HistoryRecorder::new();
    let (va, vb) = (fingerprint(b"vA"), fingerprint(b"vB"));
    recorder.register_key("k", fingerprint(b"init"));
    recorder.record_put("k", 1, va, 0, 10); // the write that crossed the epoch boundary
    recorder.record_get("k", 2, va, 20, 30); // new epoch: transferred copy visible
    recorder.record_put("k", 3, vb, 40, 50); // a later write supersedes it
    recorder.record_get("k", 4, vb, 60, 70);
    recorder.record_get("k", 5, va, 80, 90); // the replayed vA resurfaces: new→old→new
    let failures = recorder.check_all();
    assert_eq!(failures.len(), 1, "the double-apply must be flagged: {failures:?}");
    assert!(!failures[0].1.is_ok());

    // The same anomaly expressed directly against the History API.
    let mut h = History::new(fingerprint(b"init"));
    h.push(legostore::lincheck::Operation::write(1, va, 0, 10));
    h.push(legostore::lincheck::Operation::write(2, vb, 20, 30));
    h.push(legostore::lincheck::Operation::read(3, va, 40, 50));
    assert_eq!(h.check(), CheckOutcome::NotLinearizable);
}

// ---------------------------------------------------------------------------
// Seeded storms: PUT/GET racing reconfigurations under within-f fault plans.
// ---------------------------------------------------------------------------

/// Discrete-event runtime: 200 seeded schedules of concurrent traffic, two protocol
/// flips, and a within-`f` fault plan over both placements. Every recorded history
/// must check linearizable (payloads are token-stamped, so any double-apply or stale
/// cross-epoch read is visible to the checker) and every operation must complete.
#[test]
fn sim_reconfig_storm_stays_linearizable_across_seeds() {
    for i in 0..SIM_SEEDS {
        let seed = SEED_BASE + i;
        let (old, flipped) = if seed % 2 == 0 {
            (abd_config(), cas_config())
        } else {
            (cas_config(), abd_config())
        };
        let plan = transfer_plan(&old, &flipped, seed, 12_000.0);
        let mut sim = Simulation::with_options(
            CloudModel::gcp9(),
            SimOptions {
                op_timeout_ms: 1_000.0,
                max_timeout_retries: 4,
                ..Default::default()
            },
        );
        sim.enable_history_recording();
        sim.set_fault_plan(&plan);
        sim.create_key("storm", old.clone(), &Value::filler(64));
        let origins = [GcpLocation::Tokyo.dc(), GcpLocation::Oregon.dc(), GcpLocation::Frankfurt.dc()];
        for n in 0..36u64 {
            let kind = if n % 3 == 0 { OpKind::Put } else { OpKind::Get };
            sim.schedule_request(n as f64 * 250.0, origins[(n % 3) as usize], kind, "storm", 64);
        }
        // Two transfers race the traffic: flip protocols mid-stream, then flip back.
        let mut back = old.clone();
        back.dcs.rotate_left(1);
        sim.schedule_reconfig(2_000.0, "storm", flipped.clone());
        sim.schedule_reconfig(6_500.0, "storm", back);
        let report = sim.run();
        let histories = report.histories.as_ref().expect("recording enabled");
        let failures = histories.check_all();
        assert!(
            failures.is_empty(),
            "seed {seed}: non-linearizable under reconfig storm: {failures:?}"
        );
        assert_eq!(report.failures(), 0, "seed {seed}: within-f must stay live: {:?}", report.operations);
        assert!(
            !report.reconfig_durations_ms.is_empty(),
            "seed {seed}: at least one transfer must complete under within-f faults"
        );
    }
}

/// Threaded runtime: concurrent writer/reader threads race `Cluster::reconfigure`
/// while a seeded within-`f` fault plan fires, all on virtual time. The transfer must
/// complete, every operation must complete, and the history must check linearizable.
#[test]
fn cluster_reconfig_storm_stays_linearizable_across_seeds() {
    for i in 0..cluster_seed_count() {
        let seed = SEED_BASE + i;
        let (old, target) = if seed % 2 == 0 {
            (abd_config(), cas_config())
        } else {
            (cas_config(), abd_config())
        };
        let plan = transfer_plan(&old, &target, seed, 20_000.0);
        let cluster = Cluster::gcp9(ClusterOptions {
            latency_scale: 1.0,
            op_timeout: Duration::from_secs(2),
            max_attempts: 8,
            clock: Clock::virtual_time(),
            fault_plan: plan,
            obs: ObsConfig::Metrics,
            ..Default::default()
        });
        let key = Key::from(format!("storm-{seed}").as_str());
        cluster.install_key(key.clone(), old.clone(), &Value::from("init"));
        let clock = cluster.options().clock.clone();
        let key = Arc::new(key);
        let mut handles = Vec::new();
        // Two writers and a reader, placed across both placements plus one outsider.
        let spots = [old.dcs[0], target.dcs[0], GcpLocation::Frankfurt.dc()];
        for (who, dc) in spots.into_iter().enumerate() {
            let writes = who < 2;
            let mut client = cluster.client(dc);
            let key = key.clone();
            let clock = clock.clone();
            handles.push(std::thread::spawn(move || {
                let _guard = clock.enter();
                for n in 0..6 {
                    if writes {
                        let value = Value::from(format!("c{who}-v{n}").as_str());
                        client.put(&key, value).unwrap_or_else(|e| {
                            panic!("put c{who}-v{n} must survive a within-f transfer: {e}")
                        });
                    } else {
                        client.get(&key).unwrap_or_else(|e| {
                            panic!("get #{n} at {dc} must survive a within-f transfer: {e}")
                        });
                    }
                    clock.sleep(Duration::from_millis(1_200));
                }
            }));
        }
        // The transfer fires mid-traffic, racing the clients and the fault plan.
        {
            let _guard = clock.enter();
            clock.sleep(Duration::from_millis(2_000));
        }
        let took = cluster
            .reconfigure(key.as_ref().clone(), target.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: within-f transfer must complete: {e}"));
        assert!(took < Duration::from_secs(16), "seed {seed}: {took:?}");
        for h in handles {
            h.join().expect("client thread");
        }
        assert_eq!(
            cluster.metadata_config(&key).unwrap().epoch,
            ConfigEpoch(1),
            "seed {seed}"
        );
        let failures = cluster.recorder().check_all();
        if !failures.is_empty() {
            cluster.obs().flight().dump_to_stderr("reconfig storm check failed");
        }
        assert!(
            failures.is_empty(),
            "seed {seed}: non-linearizable under reconfig storm: {failures:?}\nhistory: {:#?}",
            cluster.recorder().history(key.as_str())
        );
        assert_eq!(cluster.recorder().len(key.as_str()), 3 * 6, "seed {seed}: all ops completed");
        cluster.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Beyond-f: the transfer stalls with a typed verdict and no half-moved key.
// ---------------------------------------------------------------------------

#[test]
fn beyond_f_faults_stall_the_transfer_with_a_typed_error() {
    // Crash two of three old-placement DCs (f = 1): the controller's query round can
    // never assemble a quorum, so the transfer must stall with the typed verdict —
    // naming the round — and leave the metadata pointing at the old configuration.
    let old = abd_config();
    let plan = FaultPlan {
        seed: 3,
        events: vec![
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: old.dcs[1] } },
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: old.dcs[2] } },
        ],
    };
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_millis(500),
        clock: Clock::virtual_time(),
        fault_plan: plan,
        ..Default::default()
    });
    let key = Key::from("stall");
    cluster.install_key(key.clone(), old.clone(), &Value::from("kept"));
    let err = cluster
        .reconfigure(key.clone(), cas_config())
        .expect_err("a beyond-f outage must stall the transfer");
    let StoreError::ReconfigStalled { epoch, round } = err else {
        panic!("the stall must be the typed verdict, got {err:?}");
    };
    assert_eq!(epoch, ConfigEpoch(1));
    assert_eq!(round, 1, "the query round is where the quorum is unreachable");
    // No half-moved key: the metadata still names the old epoch and configuration.
    let meta = cluster.metadata_config(&key).unwrap();
    assert_eq!(meta.epoch, ConfigEpoch::INITIAL);
    assert_eq!(meta.describe(), old.describe());
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Epoch lease: a dead controller cannot park deferred requests forever.
// ---------------------------------------------------------------------------

#[test]
fn epoch_lease_drains_deferred_requests_when_the_controller_stalls() {
    // The controller blocks the old placement in its query round, then stalls forever
    // in write-new (the entire new placement is down — beyond f for the transfer, but
    // zero faults on the old placement). Client requests parked behind the pending
    // epoch must not wait on a FinishReconfig that will never come: the epoch lease
    // expires on the virtual clock, the old epoch re-activates, and the parked
    // requests drain there — while the metadata still names the old configuration.
    let old = abd_config();
    let new = Configuration::abd_majority(
        vec![
            GcpLocation::Singapore.dc(),
            GcpLocation::Frankfurt.dc(),
            GcpLocation::Virginia.dc(),
        ],
        1,
    );
    let events = new
        .dcs
        .iter()
        .map(|dc| FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: *dc } })
        .collect();
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_millis(500),
        max_attempts: 8,
        clock: Clock::virtual_time(),
        fault_plan: FaultPlan { seed: 5, events },
        // Shortened so the drain happens inside the clients' retry budget; the default
        // (16 × op_timeout) only matters for outliving a *live* controller's deadline,
        // and this controller can never finish.
        epoch_lease: Some(Duration::from_secs(2)),
        ..Default::default()
    });
    let key = Key::from("leased");
    cluster.install_key(key.clone(), old.clone(), &Value::from("v1"));
    let clock = cluster.options().clock.clone();

    // The client fires after the controller's query round has blocked the old epoch.
    let put = {
        let mut client = cluster.client(old.dcs[0]);
        let key = key.clone();
        let clock = clock.clone();
        std::thread::spawn(move || {
            let _guard = clock.enter();
            clock.sleep(Duration::from_millis(1_000));
            client.put(&key, Value::from("v2"))
        })
    };
    let err = cluster
        .reconfigure(key.clone(), new)
        .expect_err("the transfer cannot complete with the new placement down");
    let StoreError::ReconfigStalled { round, .. } = err else {
        panic!("expected the typed stall verdict, got {err:?}");
    };
    assert_eq!(round, 3, "write-new is where the dead placement bites");
    put.join()
        .expect("client thread")
        .expect("the parked PUT must drain via the epoch lease, in the old epoch");

    // The key was never half-moved: old epoch, old placement, and the drained write
    // is durably readable there.
    let meta = cluster.metadata_config(&key).unwrap();
    assert_eq!(meta.epoch, ConfigEpoch::INITIAL);
    // A third-party reader (London hosts nothing and is not crashed) sees the drained
    // write through the old placement.
    let mut reader = cluster.client(GcpLocation::London.dc());
    assert_eq!(reader.get(&key).unwrap(), Value::from("v2"));
    assert!(cluster.recorder().check_all().is_empty());
    cluster.shutdown();
}
