//! Linearizability-under-faults stress suite.
//!
//! LEGOStore's central claim — ABD and CAS quorums stay linearizable and available
//! while up to `f` DCs are slow, partitioned, or down (paper §3.2) — exercised instead
//! of asserted: seeded random fault plans (crashes, partitions, slow DCs, lossy links)
//! are injected into the threaded deployment on virtual time, concurrent clients hammer
//! a key through them, and every recorded history is checked with the
//! `legostore-lincheck` checker. Both directions are demonstrated:
//!
//! * every plan with at most `f` concurrently-faulted DCs yields a linearizable *and*
//!   live history (all operations complete) for ABD and for CAS;
//! * a beyond-`f` outage stalls operations — the typed
//!   [`StoreError::QuorumUnreachable`] verdict, never a hang — without ever returning a
//!   non-linearizable history, and liveness returns once quorums are reachable again.
//!
//! Knobs: the per-protocol seed matrix defaults to [`DEFAULT_SEEDS`] seeds starting at
//! [`SEED_BASE`]; set `LEGOSTORE_FAULT_ITERS=<n>` to widen the sweep locally (CI runs
//! the default). Virtual time makes a multi-second fault schedule cost milliseconds of
//! wall clock, so widening is cheap.

use legostore::prelude::*;
use legostore::types::{FaultEvent, FaultKind, FaultPlan};
use legostore_workload::FaultPlanSpec;
use std::sync::Arc;
use std::time::Duration;

/// First seed of the sweep (`seed = SEED_BASE + i`), so failures name a reproducible plan.
const SEED_BASE: u64 = 100;

/// Seeds per protocol when `LEGOSTORE_FAULT_ITERS` is unset.
const DEFAULT_SEEDS: u64 = 5;

fn seed_count() -> u64 {
    std::env::var("LEGOSTORE_FAULT_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS)
        .max(1)
}

fn abd_config() -> Configuration {
    Configuration::abd_majority(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        1,
    )
}

fn cas_config() -> Configuration {
    Configuration::cas_default(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::Singapore.dc(),
            GcpLocation::Virginia.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        3,
        1,
    )
}

/// A virtual-time deployment with `plan` injected at the transport. `latency_scale` is
/// 1.0 so fault-plan model time and clock time coincide; generous timeout/attempt
/// budgets let operations ride out whole fault windows — all of it costing microseconds
/// of wall clock.
fn faulted_cluster(plan: FaultPlan) -> Cluster {
    Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_secs(2),
        max_attempts: 8,
        clock: Clock::virtual_time(),
        fault_plan: plan,
        // Telemetry on: the suite exercises the instrumented hot path under faults, and
        // a failed linearizability check below dumps the flight recorder's timeline.
        obs: ObsConfig::Metrics,
        ..Default::default()
    })
}

/// A seeded adversarial schedule over `config`'s placement: up to `windows` fault
/// windows, never more than `f` DCs faulted at once, partitions cutting victims off
/// from all nine DCs (clients included).
fn plan_for(config: &Configuration, seed: u64, duration_ms: f64, windows: usize) -> FaultPlan {
    let mut spec = FaultPlanSpec::for_placement(config.dcs.clone(), config.f, duration_ms);
    spec.universe = CloudModel::gcp9().dc_ids();
    spec.windows = windows;
    let plan = legostore_workload::generate_fault_plan(&spec, seed);
    assert!(
        plan.max_concurrent_faulted() <= config.f,
        "generator must respect f: {plan:?}"
    );
    plan
}

/// Hammers one key with concurrent writers and readers placed *inside* the placement
/// (so crashes and partitions hit them) plus one outside observer. Panics if any
/// operation fails; returns after checking the recorded history is linearizable.
fn stress(cluster: &Cluster, key: &Key, config: &Configuration, ops_each: usize, pause: Duration) {
    let key = Arc::new(key.clone());
    let clock = cluster.options().clock.clone();
    let mut handles = Vec::new();
    // Two writers at the first two placement DCs, one reader at the last placement DC,
    // one reader outside the placement (Frankfurt is in no test configuration).
    let outside = GcpLocation::Frankfurt.dc();
    let spots = [config.dcs[0], config.dcs[1], *config.dcs.last().unwrap(), outside];
    for (who, dc) in spots.into_iter().enumerate() {
        let writes = who < 2;
        let mut client = cluster.client(dc);
        let key = key.clone();
        let clock = clock.clone();
        handles.push(std::thread::spawn(move || {
            // Register with the virtual clock for the whole loop: between the pause and
            // the next operation this thread must stay visible, or logical time could
            // jump ahead of work it is about to do.
            let _guard = clock.enter();
            for i in 0..ops_each {
                if writes {
                    let value = Value::from(format!("c{who}-v{i}").as_str());
                    client.put(&key, value).unwrap_or_else(|e| {
                        panic!("put c{who}-v{i} must survive ≤f faults: {e}")
                    });
                } else {
                    client.get(&key).unwrap_or_else(|e| {
                        panic!("get #{i} at {dc} must survive ≤f faults: {e}")
                    });
                }
                clock.sleep(pause);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let failures = cluster.recorder().check_all();
    if !failures.is_empty() {
        // A failed check comes with its timeline: the flight recorder holds the recent
        // fault verdicts, quorum widenings and reconfiguration restarts leading up to it.
        cluster.obs().flight().dump_to_stderr("linearizability check failed under faults");
    }
    assert!(
        failures.is_empty(),
        "non-linearizable under faults: {failures:?}\nhistory: {:#?}",
        cluster.recorder().history(key.as_str())
    );
}

#[test]
fn abd_stays_linearizable_and_live_under_seeded_fault_plans() {
    for i in 0..seed_count() {
        let seed = SEED_BASE + i;
        let config = abd_config();
        let plan = plan_for(&config, seed, 20_000.0, 3);
        let cluster = faulted_cluster(plan);
        let key = Key::from(format!("abd-faults-{seed}").as_str());
        cluster.install_key(key.clone(), config.clone(), &Value::from("init"));
        stress(&cluster, &key, &config, 8, Duration::from_millis(1_500));
        assert_eq!(cluster.recorder().len(key.as_str()), 4 * 8, "all ops completed");
        cluster.shutdown();
    }
}

#[test]
fn cas_stays_linearizable_and_live_under_seeded_fault_plans() {
    for i in 0..seed_count() {
        let seed = SEED_BASE + i;
        let config = cas_config();
        let plan = plan_for(&config, seed, 20_000.0, 3);
        let cluster = faulted_cluster(plan);
        let key = Key::from(format!("cas-faults-{seed}").as_str());
        cluster.install_key(key.clone(), config.clone(), &Value::filler(900));
        stress(&cluster, &key, &config, 8, Duration::from_millis(1_500));
        assert_eq!(cluster.recorder().len(key.as_str()), 4 * 8, "all ops completed");
        cluster.shutdown();
    }
}

#[test]
fn cas_decodes_with_any_k_of_n_coded_elements() {
    // Konwar et al.'s storage-optimized erasure algorithms motivate checking the
    // k-of-n decode path under missing coded elements specifically: crash each host in
    // turn and require reads to succeed — across all victims, every (n-1)-subset of
    // shards must decode, so the client never depends on one particular element.
    let config = cas_config();
    for victim in config.dcs.clone() {
        let plan = FaultPlan {
            seed: 7,
            events: vec![FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: victim } }],
        };
        let cluster = faulted_cluster(plan);
        let key = Key::from("k-of-n");
        cluster.install_key(key.clone(), config.clone(), &Value::filler(1200));
        let mut client = cluster.client(GcpLocation::Frankfurt.dc());
        let got = client
            .get(&key)
            .unwrap_or_else(|e| panic!("GET must decode without {victim}: {e}"));
        assert_eq!(got, Value::filler(1200), "decode must reconstruct the exact value");
        // A fresh write re-encodes without the victim; reading it back decodes the new
        // codeword from surviving elements only.
        client.put(&key, Value::filler(800)).expect("PUT survives one missing host");
        assert_eq!(client.get(&key).unwrap(), Value::filler(800));
        assert!(cluster.recorder().check_all().is_empty());
        cluster.shutdown();
    }
}

#[test]
fn beyond_f_outage_stalls_with_typed_error_but_never_corrupts_history() {
    // Direction two of the claim: fault MORE than f DCs and the store must lose
    // liveness only — a typed QuorumUnreachable verdict, never a non-linearizable
    // history — and must recover as soon as quorums are reachable again.
    let config = abd_config();
    let victims = [GcpLocation::LosAngeles.dc(), GcpLocation::Oregon.dc()];
    let plan = FaultPlan {
        seed: 11,
        events: vec![
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: victims[0] } },
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: victims[1] } },
            FaultEvent { at_ms: 60_000.0, kind: FaultKind::RestartDc { dc: victims[0] } },
            FaultEvent { at_ms: 60_000.0, kind: FaultKind::RestartDc { dc: victims[1] } },
        ],
    };
    assert_eq!(plan.max_concurrent_faulted(), 2, "2 > f = 1 by construction");
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_secs(2),
        max_attempts: 3,
        clock: Clock::virtual_time(),
        fault_plan: plan,
        ..Default::default()
    });
    let key = Key::from("beyond-f");
    cluster.install_key(key.clone(), config, &Value::from("init"));
    let mut client = cluster.client(GcpLocation::Tokyo.dc());

    // While 2 of 3 hosts are down, writes and reads stall with the typed verdict.
    let put = client.put(&key, Value::from("lost?"));
    assert!(matches!(put, Err(StoreError::QuorumUnreachable { .. })), "{put:?}");
    let get = client.get(&key);
    assert!(matches!(get, Err(StoreError::QuorumUnreachable { .. })), "{get:?}");
    // Safety was never traded for the stall: nothing non-linearizable was recorded.
    assert!(cluster.recorder().check_all().is_empty());

    // Keep retrying: each failed round advances virtual time by its timeouts, so the
    // t = 60 s restart arrives after a bounded number of rounds — and liveness returns.
    let clock = cluster.options().clock.clone();
    let _guard = clock.enter();
    let mut recovered = false;
    for round in 0..20 {
        match client.put(&key, Value::from(format!("recovered-{round}").as_str())) {
            Ok(()) => {
                recovered = true;
                break;
            }
            Err(StoreError::QuorumUnreachable { .. }) => continue,
            Err(other) => panic!("only the typed stall verdict is acceptable: {other}"),
        }
    }
    assert!(recovered, "liveness must return once quorums are reachable");
    let read_back = client.get(&key).expect("reads work after recovery");
    assert!(read_back.as_bytes().starts_with(b"recovered-"));
    assert!(cluster.recorder().check_all().is_empty());
    cluster.shutdown();
}

#[test]
fn negative_control_checker_rejects_a_non_linearizable_history() {
    // The suite above only ever feeds the checker passing histories; prove the oracle
    // can fail. A stale read *past* a completed write is the canonical violation the
    // fault layer could introduce if quorum intersection broke.
    let recorder = HistoryRecorder::new();
    recorder.register_key("ok", legostore::lincheck::recorder::fingerprint(b"init"));
    recorder.record_put("ok", 1, 10, 0, 5);
    recorder.record_get("ok", 2, 10, 6, 9);
    // The poisoned key: put(fp=77) completes at t=5, a read starting at t=10 returns
    // the pre-write value. No linearization order can explain it.
    recorder.register_key("poisoned", 55);
    recorder.record_put("poisoned", 1, 77, 0, 5);
    recorder.record_get("poisoned", 2, 55, 10, 15);
    let failures = recorder.check_all();
    assert_eq!(failures.len(), 1, "exactly the poisoned key must fail: {failures:?}");
    assert_eq!(failures[0].0, "poisoned");
    assert!(!failures[0].1.is_ok());

    // Same violation expressed directly against the History API.
    let mut h = History::new(0);
    h.push(legostore::lincheck::Operation::write(1, 42, 0, 10));
    h.push(legostore::lincheck::Operation::read(2, 0, 20, 30));
    assert_eq!(h.check(), CheckOutcome::NotLinearizable);
}
