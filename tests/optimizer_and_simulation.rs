//! Cross-crate integration: the optimizer's plans hold up when executed — the simulator's
//! measured latencies respect the plan's worst-case predictions and SLOs, the metered
//! network cost ranks configurations the same way the cost model does, and the paper's
//! headline qualitative findings come out of the pipeline end to end.

use legostore::prelude::*;

fn sim_workload(plan: &Plan, spec: &WorkloadSpec, duration_ms: f64, seed: u64) -> SimReport {
    let model = CloudModel::gcp9();
    let mut sim = Simulation::new(model);
    sim.create_key("k", plan.config.clone(), &Value::filler(spec.object_size as usize));
    let mut gen = TraceGenerator::new(spec.clone(), 1, seed);
    sim.schedule_trace(&gen.generate(duration_ms), 0.0, |_| "k".to_string());
    sim.run()
}

fn spec_for(dist: ClientDistribution, read_ratio: f64, slo_ms: f64) -> WorkloadSpec {
    let model = CloudModel::gcp9();
    let mut spec = WorkloadSpec::example();
    spec.object_size = 1024;
    spec.arrival_rate = 60.0;
    spec.read_ratio = read_ratio;
    spec.client_distribution = client_distribution(dist, &model);
    spec.slo_get_ms = slo_ms;
    spec.slo_put_ms = slo_ms;
    spec
}

#[test]
fn simulated_latencies_respect_the_plans_predictions() {
    let spec = spec_for(ClientDistribution::SydneyTokyo, 0.5, 1000.0);
    let plan = Optimizer::new(CloudModel::gcp9()).optimize(&spec).expect("feasible");
    let report = sim_workload(&plan, &spec, 30_000.0, 11);
    assert!(report.operations.len() > 500);
    assert_eq!(report.failures(), 0);
    // Worst-case model bounds the simulator's per-op latencies (small tolerance for the
    // metadata-fetch rounding in the simulator).
    let put = report.latency(Some(OpKind::Put), None, None, None);
    let get = report.latency(Some(OpKind::Get), None, None, None);
    assert!(
        put.max_ms <= plan.worst_put_latency_ms + 20.0,
        "simulated PUT max {} vs predicted worst case {}",
        put.max_ms,
        plan.worst_put_latency_ms
    );
    assert!(
        get.max_ms <= plan.worst_get_latency_ms + 20.0,
        "simulated GET max {} vs predicted worst case {}",
        get.max_ms,
        plan.worst_get_latency_ms
    );
    // And therefore the SLO is met.
    assert_eq!(report.slo_violations(spec.slo_get_ms, Some(OpKind::Get)), 0);
    assert_eq!(report.slo_violations(spec.slo_put_ms, Some(OpKind::Put)), 0);
}

#[test]
fn metered_cost_ranks_plans_like_the_cost_model() {
    // For a read-heavy workload the cost model says CAS is cheaper than ABD on the network;
    // the simulator's byte-level metering must agree on the ranking.
    let spec = spec_for(ClientDistribution::Tokyo, 0.97, 1000.0);
    let optimizer = Optimizer::new(CloudModel::gcp9());
    let abd = optimizer
        .optimize_filtered(&spec, ProtocolFilter::AbdOnly)
        .expect("ABD feasible");
    let cas = optimizer
        .optimize_filtered(&spec, ProtocolFilter::CasOnly)
        .expect("CAS feasible");
    let abd_report = sim_workload(&abd, &spec, 30_000.0, 5);
    let cas_report = sim_workload(&cas, &spec, 30_000.0, 5);
    assert!(
        cas_report.cost.total() < abd_report.cost.total(),
        "CAS metered ${} vs ABD metered ${}",
        cas_report.cost.total(),
        abd_report.cost.total()
    );
    // Model-level ordering agrees.
    assert!(
        cas.cost.get_network + cas.cost.put_network
            < abd.cost.get_network + abd.cost.put_network
    );
}

#[test]
fn headline_findings_hold_end_to_end() {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());

    // (1) With a relaxed SLO, read-heavy workloads choose erasure coding.
    let relaxed = spec_for(ClientDistribution::Tokyo, 30.0 / 31.0, 1000.0);
    let plan = optimizer.optimize(&relaxed).unwrap();
    assert_eq!(plan.config.protocol, ProtocolKind::Cas);

    // (2) With a stringent SLO and spread-out users, CAS becomes infeasible but ABD copes.
    let stringent = spec_for(ClientDistribution::SydneyTokyo, 0.5, 200.0);
    assert!(optimizer
        .optimize_filtered(&stringent, ProtocolFilter::CasOnly)
        .is_none());
    assert!(optimizer
        .optimize_filtered(&stringent, ProtocolFilter::AbdOnly)
        .is_some());

    // (3) The optimizer never loses to any baseline.
    let workload = spec_for(ClientDistribution::SydneySingapore, 0.5, 1000.0);
    let best = optimizer.optimize(&workload).unwrap();
    for b in Baseline::ALL {
        if let Some(p) = evaluate_baseline(&model, &workload, b) {
            assert!(best.total_cost() <= p.total_cost() + 1e-9, "{}", b.label());
        }
    }

    // (4) Write-heavy small objects at high arrival rates prefer ABD even at relaxed SLOs
    //     (§4.2.3 / Figure 2(a): HW, 1 KB, 500 req/s).
    let mut hw = spec_for(ClientDistribution::Tokyo, 1.0 / 31.0, 1000.0);
    hw.arrival_rate = 500.0;
    hw.total_data_bytes = 100 * 1_000_000_000;
    let hw_plan = optimizer.optimize(&hw).unwrap();
    assert_eq!(hw_plan.config.protocol, ProtocolKind::Abd);
}

#[test]
fn failed_dc_is_excluded_by_a_follow_up_optimization() {
    // §4.5: after a DC failure the optimizer recomputes a configuration that avoids the
    // failed DC, and the store transitions to it.
    let model = CloudModel::gcp9();
    let spec = spec_for(ClientDistribution::SydneyTokyo, 0.5, 1000.0);
    let original = Optimizer::new(model.clone()).optimize(&spec).unwrap();
    let victim = original.config.dcs[0];
    let replanned = Optimizer::with_options(
        model.clone(),
        SearchOptions {
            excluded_dcs: vec![victim],
            ..Default::default()
        },
    )
    .optimize(&spec)
    .expect("still feasible with one DC excluded");
    assert!(!replanned.config.dcs.contains(&victim));

    // Execute the transition in the simulator with the victim actually failed.
    let mut sim = Simulation::new(model);
    sim.create_key("k", original.config.clone(), &Value::filler(1024));
    let mut gen = TraceGenerator::new(spec.clone(), 1, 3);
    sim.schedule_trace(&gen.generate(20_000.0), 0.0, |_| "k".to_string());
    sim.schedule_failure(5_000.0, victim);
    sim.schedule_reconfig(8_000.0, "k", replanned.config.clone());
    let report = sim.run();
    assert_eq!(report.reconfig_durations_ms.len(), 1);
    assert_eq!(report.failures(), 0, "operations must survive failure + reconfiguration");
}

#[test]
fn wikipedia_pipeline_produces_savings() {
    // A miniature version of §4.6: synthesize Wikipedia-like keys, optimize each, and check
    // the optimizer saves cost against the latency-oriented baseline in aggregate.
    let model = CloudModel::gcp9();
    let params = legostore::workload::wikipedia::WikipediaParams {
        num_keys: 25,
        ..Default::default()
    };
    let keys = legostore::workload::synthesize_wikipedia(&model, &params, 3);
    let optimizer = Optimizer::new(model.clone());
    let mut optimal_total = 0.0;
    let mut nearest_total = 0.0;
    for key in &keys {
        let plan = optimizer.optimize(&key.t1).expect("feasible at 750 ms");
        optimal_total += plan.total_cost();
        if let Some(nearest) = evaluate_baseline(&model, &key.t1, Baseline::CasNearest) {
            nearest_total += nearest.total_cost();
        }
    }
    assert!(optimal_total > 0.0);
    assert!(
        optimal_total <= nearest_total,
        "optimizer ${optimal_total} vs nearest ${nearest_total}"
    );
}
