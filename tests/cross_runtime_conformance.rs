//! Cross-runtime conformance: one workload trace + one fault plan, replayed on the
//! discrete-event simulator, on the virtual-time threaded deployment, *and* on the TCP
//! transport (real loopback sockets to `legostore-server` loops), must agree.
//!
//! This closes the ROADMAP item "the bench harness never drives the threaded
//! deployment": every experiment used to run only on `legostore-sim`, so nothing
//! checked that the simulator's latencies mean anything for real thread interleavings.
//! Here both runtimes execute the identical open-loop Poisson trace (one request
//! thread per arrival in the deployment, mirroring the simulator's open loop) under
//! the identical fault schedule, and the test asserts:
//!
//! * both record linearizable histories (the simulator now records histories too);
//! * every operation completes in both runtimes (the plan stays within `f = 1`);
//! * per-operation latencies agree — tightly for operations untouched by the fault
//!   window, loosely overall (retry timers may round differently at window edges).
//!
//! Stated tolerance: fault-free operations must match within [`CLEAN_TOLERANCE_MS`]
//! per op; the overall means within [`MEAN_TOLERANCE_FRACTION`]. Both runtimes are
//! deterministic here (virtual clocks, seeded trace, seeded faults), so these bounds
//! are stable, not flaky.
//!
//! The TCP runtime runs on a real clock (sockets are invisible to the virtual clock's
//! in-flight accounting), so its latencies carry loopback and scheduler noise and are
//! not compared numerically. It is held to the protocol-level guarantees instead: the
//! same concurrent faulty trace completes every operation with a linearizable history,
//! and a sequential trace produces the *identical* history (same operation kinds, same
//! observed values) as the in-process transport.

use legostore::prelude::*;
use legostore::types::{FaultEvent, FaultKind, FaultPlan};
use legostore_workload::Request;
use std::time::Duration;

/// Per-op latency agreement for operations outside the fault window (ms). The runtimes
/// model the same round trips; the slack covers the simulator metering transfer time on
/// the request leg where the deployment folds it all into the reply leg.
const CLEAN_TOLERANCE_MS: f64 = 5.0;

/// Relative agreement of the overall mean latencies (faulted ops included).
const MEAN_TOLERANCE_FRACTION: f64 = 0.15;

const OBJECT_BYTES: u64 = 64;

fn key() -> Key {
    Key::from("conformance")
}

fn config() -> Configuration {
    Configuration::abd_majority(
        vec![
            GcpLocation::Tokyo.dc(),
            GcpLocation::LosAngeles.dc(),
            GcpLocation::Oregon.dc(),
        ],
        1,
    )
}

/// The shared fault schedule: Los Angeles (a majority-quorum member for both client
/// sites) crashes for five seconds mid-trace, then recovers.
fn fault_plan() -> FaultPlan {
    let la = GcpLocation::LosAngeles.dc();
    FaultPlan {
        seed: 3,
        events: vec![
            FaultEvent { at_ms: 6_000.0, kind: FaultKind::CrashDc { dc: la } },
            FaultEvent { at_ms: 11_000.0, kind: FaultKind::RestartDc { dc: la } },
        ],
    }
}

/// True if an operation arriving at `t_ms` can interact with the crash window (the
/// window itself plus the retry budget after it).
fn touches_fault_window(t_ms: f64) -> bool {
    (2_000.0..=13_500.0).contains(&t_ms)
}

/// The shared trace: open-loop Poisson arrivals from Tokyo and Virginia.
fn trace() -> Vec<Request> {
    let mut spec = WorkloadSpec::example();
    spec.arrival_rate = 2.0;
    spec.read_ratio = 0.5;
    spec.object_size = OBJECT_BYTES;
    spec.client_distribution = vec![
        (GcpLocation::Tokyo.dc(), 0.6),
        (GcpLocation::Virginia.dc(), 0.4),
    ];
    let mut gen = TraceGenerator::new(spec, 1, 4242);
    gen.generate(20_000.0)
}

/// A 64-byte PUT payload unique to request `i` (distinct fingerprints keep the
/// linearizability check meaningful).
fn put_value(i: usize) -> Value {
    let mut bytes = vec![0xCDu8; OBJECT_BYTES as usize];
    bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
    Value::from(bytes)
}

fn initial_value() -> Value {
    Value::filler(OBJECT_BYTES as usize)
}

/// Replays the trace on the simulator; returns per-request latencies in trace order.
fn run_simulator(trace: &[Request]) -> Vec<f64> {
    let mut sim = Simulation::with_options(
        CloudModel::gcp9(),
        SimOptions {
            op_timeout_ms: 2_000.0,
            max_timeout_retries: 3,
            ..Default::default()
        },
    );
    sim.enable_history_recording();
    sim.set_fault_plan(&fault_plan());
    sim.create_key(key().as_str(), config(), &initial_value());
    sim.schedule_trace(trace, 0.0, |_| key().0.clone());
    let report = sim.run();
    assert_eq!(report.operations.len(), trace.len());
    assert_eq!(report.failures(), 0, "≤ f faults: every op completes: {:?}", report.operations);
    let histories = report.histories.as_ref().expect("recording enabled");
    let failures = histories.check_all();
    assert!(failures.is_empty(), "simulator history not linearizable: {failures:?}");
    // Operations are recorded in completion order; restore trace (arrival) order.
    let mut ops = report.operations.clone();
    ops.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).unwrap());
    ops.iter().map(|o| o.latency_ms()).collect()
}

/// Replays the trace on the threaded deployment under a virtual clock at
/// `latency_scale = 1.0` (model milliseconds == clock milliseconds): one thread per
/// arrival, released at its scheduled instant — the simulator's open loop, with real
/// thread interleavings. Returns per-request latencies in trace order.
fn run_deployment(trace: &[Request]) -> Vec<f64> {
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_secs(2),
        max_attempts: 4,
        clock: Clock::virtual_time(),
        fault_plan: fault_plan(),
        ..Default::default()
    });
    cluster.install_key(key(), config(), &initial_value());
    let clock = cluster.options().clock.clone();
    let key = key();
    let mut results: Vec<(usize, f64)> = std::thread::scope(|scope| {
        // Hold a participant guard while the request threads start: the virtual clock
        // must not advance past early arrival times before every thread has registered.
        let gate = clock.enter();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let handles: Vec<_> = trace
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let mut client = cluster.client(req.origin);
                let clock = clock.clone();
                let key = key.clone();
                let ready = ready_tx.clone();
                scope.spawn(move || {
                    let _guard = clock.enter();
                    ready.send(()).expect("main waits for readiness");
                    clock.sleep_until_ns((req.time_ms * 1_000_000.0) as u64);
                    let t0 = clock.now_ns();
                    match req.kind {
                        OpKind::Get => {
                            client.get(&key).unwrap_or_else(|e| panic!("get #{i}: {e}"));
                        }
                        OpKind::Put => {
                            client
                                .put(&key, put_value(i))
                                .unwrap_or_else(|e| panic!("put #{i}: {e}"));
                        }
                    }
                    (i, (clock.now_ns() - t0) as f64 / 1_000_000.0)
                })
            })
            .collect();
        for _ in 0..handles.len() {
            ready_rx.recv().expect("request thread panicked before registering");
        }
        drop(gate);
        handles.into_iter().map(|h| h.join().expect("request thread")).collect()
    });
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "deployment history not linearizable: {failures:?}");
    assert_eq!(cluster.recorder().len(key.as_str()), trace.len());
    cluster.shutdown();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, l)| l).collect()
}

/// Replays the trace over real loopback sockets: one `legostore-server` loop per GCP
/// data center, the driver connected via `Cluster::connect_tcp`, arrivals scheduled on
/// the real clock at `TCP_SCALE` of model time. Asserts completion and linearizability
/// (latencies are not compared — real sockets add loopback and scheduler noise).
fn run_tcp_deployment(trace: &[Request]) {
    /// Real seconds per model second: compresses the 20 s trace to ~1 s of wall time
    /// while keeping the scaled op timeout (100 ms) far above a loopback round trip.
    const TCP_SCALE: f64 = 0.05;

    let model = CloudModel::gcp9();
    let mut addrs = std::collections::HashMap::new();
    let mut servers = Vec::new();
    for dc in model.dc_ids() {
        let (addr, handle) = legostore_server::spawn_server_thread(dc).expect("spawn server");
        addrs.insert(dc, addr);
        servers.push(handle);
    }
    let cluster = Cluster::connect_tcp(
        model,
        ClusterOptions {
            latency_scale: TCP_SCALE,
            op_timeout: Duration::from_secs_f64(2.0 * TCP_SCALE),
            max_attempts: 4,
            fault_plan: fault_plan(),
            ..Default::default()
        },
        &addrs,
    )
    .expect("connect to socket servers");
    cluster.install_key(key(), config(), &initial_value());
    let clock = cluster.options().clock.clone();
    let key = key();
    std::thread::scope(|scope| {
        let handles: Vec<_> = trace
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let mut client = cluster.client(req.origin);
                let clock = clock.clone();
                let key = key.clone();
                scope.spawn(move || {
                    clock.sleep_until_ns((req.time_ms * TCP_SCALE * 1_000_000.0) as u64);
                    match req.kind {
                        OpKind::Get => {
                            client.get(&key).unwrap_or_else(|e| panic!("tcp get #{i}: {e}"));
                        }
                        OpKind::Put => {
                            client
                                .put(&key, put_value(i))
                                .unwrap_or_else(|e| panic!("tcp put #{i}: {e}"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("tcp request thread");
        }
    });
    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "tcp history not linearizable: {failures:?}");
    assert_eq!(cluster.recorder().len(key.as_str()), trace.len());
    cluster.shutdown();
    for handle in servers {
        handle.join().expect("server thread").expect("server exits cleanly");
    }
}

#[test]
fn simulator_and_deployment_agree_on_the_same_faulty_trace() {
    let trace = trace();
    assert!(trace.len() >= 25, "expected a meaningful trace, got {}", trace.len());
    assert!(trace.iter().any(|r| touches_fault_window(r.time_ms)));
    let sim = run_simulator(&trace);
    let core = run_deployment(&trace);
    assert_eq!(sim.len(), core.len());

    let mut clean_worst: f64 = 0.0;
    for (i, req) in trace.iter().enumerate() {
        if !touches_fault_window(req.time_ms) {
            clean_worst = clean_worst.max((sim[i] - core[i]).abs());
        }
    }
    assert!(
        clean_worst <= CLEAN_TOLERANCE_MS,
        "fault-free ops must agree per-op: worst |Δ| = {clean_worst:.3} ms\nsim: {sim:?}\ncore: {core:?}"
    );

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let (sim_mean, core_mean) = (mean(&sim), mean(&core));
    let rel = (sim_mean - core_mean).abs() / sim_mean.max(core_mean);
    assert!(
        rel <= MEAN_TOLERANCE_FRACTION,
        "overall means diverge: sim {sim_mean:.1} ms vs deployment {core_mean:.1} ms ({:.0}%)",
        rel * 100.0
    );

    // The fault window visibly inflated latency in both runtimes (the trace really
    // exercised the crash, this is not a vacuous comparison).
    let faulted_max = trace
        .iter()
        .enumerate()
        .filter(|(_, r)| touches_fault_window(r.time_ms))
        .map(|(i, _)| sim[i].max(core[i]))
        .fold(0.0f64, f64::max);
    assert!(
        faulted_max >= 1_000.0,
        "some op should have ridden through a timeout, max faulted latency {faulted_max:.1} ms"
    );
}

/// The third runtime: the identical concurrent faulty trace over real loopback sockets.
/// Same fault plan, same `f = 1` budget — every operation must complete and the recorded
/// history must be linearizable, like the channel-backed runtimes above.
#[test]
fn tcp_transport_completes_the_same_faulty_trace_linearizably() {
    let trace = trace();
    assert!(trace.iter().any(|r| touches_fault_window(r.time_ms)));
    run_tcp_deployment(&trace);
}

/// A deterministic sequential trace must produce the *identical* history — the same
/// operation kinds observing the same values in the same order — whether the messages
/// cross in-process channels or real sockets. This pins the transports to each other at
/// the level the paper cares about (what clients observe), not just "both linearizable".
#[test]
fn sequential_trace_yields_identical_histories_on_both_transports() {
    use legostore_lincheck::history::OperationKind;

    let ops_of = |recorder: &legostore_lincheck::HistoryRecorder, key: &Key| -> Vec<OperationKind> {
        recorder
            .history(key.as_str())
            .expect("key recorded")
            .operations
            .iter()
            .map(|op| op.kind)
            .collect()
    };
    let drive = |cluster: &Cluster| -> Vec<OperationKind> {
        cluster.install_key(key(), config(), &initial_value());
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        for i in 0..20usize {
            if i % 2 == 0 {
                client.put(&key(), put_value(i)).unwrap_or_else(|e| panic!("put #{i}: {e}"));
            } else {
                client.get(&key()).unwrap_or_else(|e| panic!("get #{i}: {e}"));
            }
        }
        assert!(cluster.recorder().check_all().is_empty());
        ops_of(&cluster.recorder(), &key())
    };

    let inproc = Cluster::gcp9(ClusterOptions {
        latency_scale: 0.01,
        clock: Clock::virtual_time(),
        ..Default::default()
    });
    let inproc_history = drive(&inproc);
    inproc.shutdown();

    let model = CloudModel::gcp9();
    let mut addrs = std::collections::HashMap::new();
    let mut servers = Vec::new();
    for dc in model.dc_ids() {
        let (addr, handle) = legostore_server::spawn_server_thread(dc).expect("spawn server");
        addrs.insert(dc, addr);
        servers.push(handle);
    }
    let tcp = Cluster::connect_tcp(
        model,
        ClusterOptions { latency_scale: 0.01, ..Default::default() },
        &addrs,
    )
    .expect("connect");
    let tcp_history = drive(&tcp);
    tcp.shutdown();
    for handle in servers {
        handle.join().expect("server thread").expect("server exits cleanly");
    }

    assert_eq!(inproc_history.len(), 20);
    assert_eq!(
        inproc_history, tcp_history,
        "the two transports observed different histories"
    );
}
