//! End-to-end telemetry: the observability layer observed from the outside.
//!
//! Three loops are closed here. (1) `Cluster::stats()` exposes client per-phase
//! histograms and per-DC server registries from a live in-process deployment.
//! (2) The §3.4 reconfiguration triggers fire from *live* span records drained off the
//! instrumented client path (`Obs::drain_ops` → `WorkloadMonitor::ingest`) rather than
//! hand-built observations. (3) A terminal `QuorumUnreachable` leaves a flight-recorder
//! timeline naming the fault verdicts and quorum widenings that led up to it.

use legostore::optimizer::{CostBreakdown, ReconfigTrigger, TriggerThresholds, WorkloadMonitor};
use legostore::types::{FaultEvent, FaultKind, FaultPlan};
use legostore::prelude::*;
use std::time::Duration;

fn cas_placement() -> Vec<DcId> {
    vec![
        GcpLocation::Tokyo.dc(),
        GcpLocation::Singapore.dc(),
        GcpLocation::Virginia.dc(),
        GcpLocation::LosAngeles.dc(),
        GcpLocation::Oregon.dc(),
    ]
}

fn instrumented_cluster() -> Cluster {
    Cluster::gcp9(ClusterOptions {
        clock: Clock::virtual_time(),
        obs: ObsConfig::Metrics,
        ..Default::default()
    })
}

#[test]
fn inproc_stats_expose_client_phases_and_per_dc_server_registries() {
    let cluster = instrumented_cluster();
    let key = Key::from("stats-key");
    cluster.install_key(
        key.clone(),
        Configuration::cas_default(cas_placement(), 3, 1),
        &Value::filler(2_048),
    );
    let mut client = cluster.client(GcpLocation::Tokyo.dc());
    for _ in 0..5 {
        client.put(&key, Value::filler(2_048)).expect("put");
        client.get(&key).expect("get");
    }

    let stats = cluster.stats().expect("in-proc scrape");
    assert_eq!(stats.servers.len(), 9, "one registry per gcp9 DC");

    // Client side: op counters and the per-phase breakdown of the CAS state machines.
    assert_eq!(stats.client.counter("client.put.ops"), 5);
    assert_eq!(stats.client.counter("client.get.ops"), 5);
    assert_eq!(stats.client.counter("client.ops_failed"), 0);
    for phase in 1..=3 {
        let h = stats
            .client
            .histogram(&format!("client.put.phase{phase}_ns"))
            .expect("CAS PUT phase histogram");
        assert_eq!(h.count, 5, "every PUT runs all 3 CAS phases");
    }
    assert!(stats.client.histogram("client.encode_ns").expect("encode").count >= 5);
    assert!(stats.client.histogram("client.decode_ns").expect("decode").count >= 5);
    // Sequential GETs against a quiet key take the one-phase fast path.
    assert_eq!(stats.client.counter("client.get.one_phase"), 5);

    // Server side. Phase 1 goes to a read quorum and phases 2–3 to a write quorum, not
    // to the full placement — the per-DC registries make that routing visible. Every DC
    // that served traffic metered bytes and filed dispatch times under the phase that
    // caused them; the scrape also refreshed the storage gauges everywhere the key
    // was installed.
    let served: Vec<DcId> = cas_placement()
        .into_iter()
        .filter(|dc| stats.servers[dc].counter("server.requests") > 0)
        .collect();
    assert!(served.len() >= 3, "at least a quorum served traffic: {served:?}");
    let mut phase1_total = 0;
    let mut finalize_total = 0;
    for dc in &served {
        let snap = &stats.servers[dc];
        assert!(snap.counter("server.bytes_in") > 0, "{dc}");
        assert!(snap.counter("server.bytes_out") > 0, "{dc}");
        let dispatched: u64 = (1..=4)
            .filter_map(|p| snap.histogram(&format!("server.dispatch_ns.phase{p}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(dispatched, snap.counter("server.requests"), "{dc}");
        phase1_total += snap.histogram("server.dispatch_ns.phase1").map_or(0, |h| h.count);
        finalize_total += snap.counter("server.msg.cas_finalize_write");
    }
    assert!(phase1_total >= 10, "5 PUT + 5 GET queries hit the read quorum");
    assert!(finalize_total >= 5 * 3, "PUT finalizes hit the write quorum");
    for dc in cas_placement() {
        assert!(stats.servers[&dc].gauge("server.keys") >= 1, "{dc} stores the key");
        assert!(stats.servers[&dc].gauge("server.storage_bytes") > 0, "{dc}");
    }
    // A DC outside the placement answered the scrape too — with an idle registry.
    let idle = &stats.servers[&GcpLocation::Frankfurt.dc()];
    assert_eq!(idle.counter("server.requests"), 0);
    cluster.shutdown();
}

#[test]
fn reconfig_triggers_fire_from_live_ingested_spans() {
    // The key is planned for Tokyo-local traffic with loose SLOs; the actual workload
    // arrives from Frankfurt, far outside the placement. Every record that reaches the
    // monitor below came off the instrumented client path, not a hand-built fixture.
    let cluster = instrumented_cluster();
    let key = Key::from("skewed-key");
    cluster.install_key(
        key.clone(),
        Configuration::cas_default(cas_placement(), 3, 1),
        &Value::filler(4_096),
    );
    let mut client = cluster.client(GcpLocation::Frankfurt.dc());
    for _ in 0..12 {
        client.put(&key, Value::filler(4_096)).expect("put");
        client.get(&key).expect("get");
    }

    let records = cluster.obs().drain_ops();
    assert_eq!(records.len(), 24, "one record per completed operation");
    assert!(records.iter().all(|r| r.ok && r.key == "skewed-key"));

    // SLOs the installed configuration was supposed to meet: 50 ms is generous for the
    // planned Tokyo-local clients and hopeless from Frankfurt.
    let mut monitor = WorkloadMonitor::new(600_000.0, 50.0, 50.0);
    let scale = cluster.options().latency_scale;
    for rec in &records {
        monitor.ingest(rec, scale);
    }
    assert_eq!(monitor.len(), 24);
    assert_eq!(monitor.client_distribution(), vec![(GcpLocation::Frankfurt.dc(), 1.0)]);

    let mut planned = WorkloadSpec::example();
    planned.arrival_rate = 100.0;
    planned.read_ratio = 0.5;
    planned.client_distribution = vec![(GcpLocation::Tokyo.dc(), 1.0)];
    let predicted = CostBreakdown { get_network: 0.1, put_network: 0.1, storage: 0.05, vm: 0.05 };
    let triggers =
        monitor.triggers(&planned, &predicted, 1.0, &TriggerThresholds::default());

    // Persistent SLO violations (24 of 24 ops over the SLO), a cost overrun (observed
    // $1.0/h vs $0.3/h predicted) and workload drift (the client mix moved wholesale
    // from Tokyo to Frankfurt) must all be flagged.
    assert!(
        triggers.iter().any(|t| matches!(t, ReconfigTrigger::SloViolations { count, .. } if *count == 24)),
        "{triggers:?}"
    );
    assert!(
        triggers.iter().any(|t| matches!(t, ReconfigTrigger::CostOverrun { .. })),
        "{triggers:?}"
    );
    assert!(
        triggers.iter().any(|t| matches!(t, ReconfigTrigger::WorkloadDrift { .. })),
        "{triggers:?}"
    );

    // The drained estimate is directly re-plannable by the optimizer.
    let estimate = monitor.estimate(&planned);
    estimate.validate().expect("estimated spec is well-formed");
    assert_eq!(estimate.client_dcs(), vec![GcpLocation::Frankfurt.dc()]);
    assert_eq!(estimate.object_size, 4_096);

    // Draining is consuming: a second drain sees only what happened since.
    assert!(cluster.obs().drain_ops().is_empty());
    cluster.shutdown();
}

#[test]
fn quorum_unreachable_leaves_a_flight_recorder_timeline() {
    // Crash 2 of 3 ABD hosts — beyond f = 1 — so the client exhausts its attempts and
    // returns the typed verdict. The flight recorder must then hold the story: fault
    // verdicts dropping requests, timeout widenings, and the final give-up line.
    let placement = vec![
        GcpLocation::Tokyo.dc(),
        GcpLocation::LosAngeles.dc(),
        GcpLocation::Oregon.dc(),
    ];
    let plan = FaultPlan {
        seed: 21,
        events: vec![
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: placement[1] } },
            FaultEvent { at_ms: 0.0, kind: FaultKind::CrashDc { dc: placement[2] } },
        ],
    };
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 1.0,
        op_timeout: Duration::from_millis(500),
        max_attempts: 2,
        clock: Clock::virtual_time(),
        fault_plan: plan,
        obs: ObsConfig::Metrics,
        ..Default::default()
    });
    let key = Key::from("doomed");
    cluster.install_key(key.clone(), Configuration::abd_majority(placement, 1), &Value::from("v"));
    let mut client = cluster.client(GcpLocation::Tokyo.dc());

    let err = client.put(&key, Value::from("lost")).unwrap_err();
    assert!(matches!(err, StoreError::QuorumUnreachable { .. }), "{err:?}");

    let dump = cluster.obs().flight().dump("test inspection");
    assert!(dump.contains("fault verdict dropped request"), "{dump}");
    assert!(dump.contains("widening to the full placement"), "{dump}");
    assert!(dump.contains("gave up after"), "{dump}");

    // The failure also landed in the metrics and the op stream.
    let snap = cluster.obs().snapshot();
    assert_eq!(snap.counter("client.ops_failed"), 1);
    assert!(snap.counter("client.retries.timeout_widen") >= 1);
    assert!(snap.counter("transport.drops.request") > 0);
    let records = cluster.obs().drain_ops();
    assert_eq!(records.len(), 1);
    assert!(!records[0].ok);
    cluster.shutdown();
}

#[test]
fn trace_level_renders_span_timelines() {
    // `ObsConfig::Trace` (the `LEGOSTORE_TRACE=1` knob) implies metrics and adds the
    // per-op timeline rendering on stderr; this exercises that path end to end.
    let cluster = Cluster::gcp9(ClusterOptions {
        clock: Clock::virtual_time(),
        obs: ObsConfig::Trace,
        ..Default::default()
    });
    assert!(cluster.obs().trace_enabled());
    let key = Key::from("traced");
    let mut client = cluster.client(GcpLocation::Tokyo.dc());
    client.create(&key, Value::from("v0")).expect("create");
    assert_eq!(client.get(&key).expect("get"), Value::from("v0"));
    let snap = cluster.obs().snapshot();
    assert_eq!(snap.counter("client.get.ops"), 1);
    cluster.shutdown();
}
