//! Workspace-level campaign smoke: the tier specs hold their budget promises, and a
//! representative slice of cells runs green end to end through the facade crate.

use legostore::campaign::{run_cell, ScenarioFamily, SweepSpec, Tier};

#[test]
fn tier_budgets_hold_their_promises() {
    // The ci tier is the gate the acceptance criteria measure: at least 200 cells and
    // every scenario family represented.
    let ci = SweepSpec::for_tier(Tier::Ci).cells();
    assert!(ci.len() >= 200, "ci tier must sweep >= 200 cells, got {}", ci.len());
    for family in [
        ScenarioFamily::Baseline,
        ScenarioFamily::Diurnal,
        ScenarioFamily::FlashCrowd,
        ScenarioFamily::RegionOutage,
        ScenarioFamily::ProtocolFlip,
        ScenarioFamily::ReconfigStorm,
    ] {
        assert!(
            ci.iter().any(|c| c.family == family),
            "ci tier must include the {family:?} family"
        );
    }
    // Tiers are strictly ordered in breadth.
    let smoke = SweepSpec::for_tier(Tier::Smoke).cells();
    let nightly = SweepSpec::for_tier(Tier::Nightly).cells();
    let full = SweepSpec::for_tier(Tier::Full).cells();
    assert!(smoke.len() < ci.len() && ci.len() < nightly.len() && nightly.len() < full.len());
}

#[test]
fn one_cell_per_scenario_family_runs_green() {
    let cells = SweepSpec::for_tier(Tier::Smoke).cells();
    for family in [
        ScenarioFamily::Baseline,
        ScenarioFamily::Diurnal,
        ScenarioFamily::FlashCrowd,
        ScenarioFamily::RegionOutage,
        ScenarioFamily::ProtocolFlip,
        ScenarioFamily::ReconfigStorm,
    ] {
        let cell = cells.iter().find(|c| c.family == family).unwrap();
        let out = run_cell(cell);
        assert!(out.passed(), "{} failed: {:?}", out.cell_id, out.violations);
        assert!(out.ops > 0, "{} ran no operations", out.cell_id);
    }
}
