//! Virtual time makes the threaded deployment reproducible: two identical runs against a
//! [`Clock::virtual_time`] cluster must record *byte-identical* linearizability histories,
//! operation timestamps included. A real-time cluster cannot promise that — its `invoke` /
//! `ret` timestamps come from the machine's monotonic clock and shift with scheduler
//! jitter from run to run — which is exactly why the linearizability suites run on
//! virtual time.

use legostore::prelude::*;
use std::time::Duration;

fn virtual_cluster() -> Cluster {
    Cluster::gcp9(ClusterOptions {
        latency_scale: 0.002,
        op_timeout: Duration::from_millis(300),
        clock: Clock::virtual_time(),
        // Metrics on: the determinism promise below extends to telemetry snapshots.
        obs: ObsConfig::Metrics,
        ..Default::default()
    })
}

/// Serializes everything [`Cluster::stats`] returns — the client registry plus each
/// DC's server registry — in a fixed order.
fn stats_json(cluster: &Cluster) -> String {
    let stats = cluster.stats().expect("scrape in-proc stats");
    let mut out = format!("client: {}", stats.client.to_json());
    for (dc, snap) in &stats.servers {
        out.push_str(&format!("\n{dc}: {}", snap.to_json()));
    }
    out
}

/// A sequential, multi-DC, multi-protocol workload with a mid-run reconfiguration.
/// Everything that feeds the recorded history — operation order, modeled delays, the
/// reconfiguration instant — is a pure function of the cluster's virtual clock.
fn run_workload(cluster: &Cluster) -> Vec<(String, String)> {
    let abd_key = Key::from("abd-key");
    let cas_key = Key::from("cas-key");
    cluster.install_key(
        abd_key.clone(),
        Configuration::abd_majority(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Oregon.dc(),
            ],
            1,
        ),
        &Value::from("abd-init"),
    );
    cluster.install_key(
        cas_key.clone(),
        Configuration::cas_default(
            vec![
                GcpLocation::Tokyo.dc(),
                GcpLocation::Singapore.dc(),
                GcpLocation::Virginia.dc(),
                GcpLocation::LosAngeles.dc(),
                GcpLocation::Oregon.dc(),
            ],
            3,
            1,
        ),
        &Value::from("cas-init"),
    );

    let mut tokyo = cluster.client(GcpLocation::Tokyo.dc());
    let mut frankfurt = cluster.client(GcpLocation::Frankfurt.dc());
    for i in 0..8 {
        tokyo.put(&abd_key, Value::from(format!("a{i}").as_str())).unwrap();
        frankfurt.get(&abd_key).unwrap();
        frankfurt.put(&cas_key, Value::from(format!("c{i}").as_str())).unwrap();
        tokyo.get(&cas_key).unwrap();
    }
    // Migrate the ABD key to CAS mid-history; the transfer's timing is virtual too.
    cluster
        .reconfigure(
            abd_key.clone(),
            Configuration::cas_default(
                vec![
                    GcpLocation::Singapore.dc(),
                    GcpLocation::Frankfurt.dc(),
                    GcpLocation::Virginia.dc(),
                    GcpLocation::Oregon.dc(),
                ],
                2,
                1,
            ),
        )
        .unwrap();
    for i in 8..12 {
        tokyo.put(&abd_key, Value::from(format!("a{i}").as_str())).unwrap();
        frankfurt.get(&abd_key).unwrap();
    }

    let recorder = cluster.recorder();
    assert!(recorder.check_all().is_empty(), "history must be linearizable");
    recorder
        .keys()
        .into_iter()
        .map(|key| {
            let history = recorder.history(&key).expect("recorded key");
            assert!(!history.is_empty());
            (key, format!("{history:?}"))
        })
        .collect()
}

#[test]
fn identical_virtual_runs_record_byte_identical_histories() {
    let first = {
        let cluster = virtual_cluster();
        let out = run_workload(&cluster);
        cluster.shutdown();
        out
    };
    let second = {
        let cluster = virtual_cluster();
        let out = run_workload(&cluster);
        cluster.shutdown();
        out
    };
    assert_eq!(
        first, second,
        "two identical virtual-time runs must serialize to the same bytes, timestamps included"
    );
    // The histories really carry virtual timestamps: the last operation returns at a
    // modeled instant well past zero, yet both runs agree on it exactly.
    let serialized = &first[0].1;
    assert!(
        serialized.contains("ret"),
        "Debug form should include return timestamps: {serialized}"
    );
}

#[test]
fn identical_virtual_runs_produce_byte_identical_metrics_snapshots() {
    // The telemetry layer makes the same promise as the history recorder: under a
    // virtual clock every recorded duration is modeled time, snapshots carry no
    // wall-clock fields, and registries serialize in name order — so two identical
    // runs must export byte-identical metrics, histograms included.
    let first = {
        let cluster = virtual_cluster();
        run_workload(&cluster);
        let json = stats_json(&cluster);
        cluster.shutdown();
        json
    };
    let second = {
        let cluster = virtual_cluster();
        run_workload(&cluster);
        let json = stats_json(&cluster);
        cluster.shutdown();
        json
    };
    assert!(first.contains("client.put.phase1_ns"), "snapshot carries phase data: {first}");
    assert!(first.contains("server.requests"), "snapshot carries server data");
    assert_eq!(
        first, second,
        "two identical virtual-time runs must export byte-identical metrics snapshots"
    );
}

#[test]
fn real_time_runs_are_not_byte_identical() {
    // The contrast case: the same sequential workload on the default (wall-clock) time
    // source produces histories whose timestamps differ between runs. This documents why
    // determinism requires `Clock::virtual_time` rather than just a fixed seed.
    let run = || {
        let cluster = Cluster::gcp9(ClusterOptions {
            latency_scale: 0.002,
            op_timeout: Duration::from_millis(300),
            ..Default::default()
        });
        let key = Key::from("wall-key");
        let mut client = cluster.client(GcpLocation::Tokyo.dc());
        client.create(&key, Value::from("init")).unwrap();
        for i in 0..3 {
            client.put(&key, Value::from(format!("v{i}").as_str())).unwrap();
        }
        let history = format!("{:?}", cluster.recorder().history(key.as_str()).unwrap());
        cluster.shutdown();
        history
    };
    assert_ne!(
        run(),
        run(),
        "wall-clock timestamps differing between runs is what virtual time eliminates"
    );
}
