//! The full adaptation loop of §3.4, end to end: serve a workload under a plan, watch it
//! with the workload monitor, detect that the workload shifted, re-plan with the optimizer,
//! apply the cost/benefit rule and execute the reconfiguration — verifying that the new
//! configuration is cheaper for the new workload and that no operation is lost.

use legostore::optimizer::monitor::{OpObservation, TriggerThresholds, WorkloadMonitor};
use legostore::optimizer::reconfig_analysis::should_reconfigure;
use legostore::optimizer::ReconfigTrigger;
use legostore::prelude::*;

fn run_phase(plan_config: &Configuration, spec: &WorkloadSpec, duration_ms: f64, seed: u64) -> SimReport {
    let model = CloudModel::gcp9();
    let mut sim = Simulation::new(model);
    sim.create_key("k", plan_config.clone(), &Value::filler(spec.object_size as usize));
    let mut gen = TraceGenerator::new(spec.clone(), 1, seed);
    sim.schedule_trace(&gen.generate(duration_ms), 0.0, |_| "k".to_string());
    sim.run()
}

fn observe(report: &SimReport, monitor: &mut WorkloadMonitor, object_bytes: u64) {
    for op in &report.operations {
        monitor.record(OpObservation {
            at_ms: op.end_ms,
            origin: op.origin,
            kind: op.kind,
            latency_ms: op.latency_ms(),
            object_bytes,
        });
    }
}

#[test]
fn monitor_detects_shift_and_replan_is_cheaper() {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());

    // Planned workload: European users, balanced read/write, 1 s SLO.
    let mut planned = WorkloadSpec::example();
    planned.object_size = 2048;
    planned.read_ratio = 0.5;
    planned.arrival_rate = 80.0;
    planned.client_distribution = vec![
        (GcpLocation::Frankfurt.dc(), 0.6),
        (GcpLocation::London.dc(), 0.4),
    ];
    planned.slo_get_ms = 1000.0;
    planned.slo_put_ms = 1000.0;
    let initial_plan = optimizer.optimize(&planned).expect("feasible");

    // The actual traffic turns out to be read-heavy and Asian.
    let mut actual = planned.clone();
    actual.read_ratio = 0.95;
    actual.arrival_rate = 160.0;
    actual.client_distribution = vec![
        (GcpLocation::Tokyo.dc(), 0.5),
        (GcpLocation::Singapore.dc(), 0.5),
    ];
    let report = run_phase(&initial_plan.config, &actual, 30_000.0, 17);
    assert!(report.operations.len() > 2000);

    // Feed the monitor with what was actually served.
    let mut monitor = WorkloadMonitor::new(60_000.0, planned.slo_get_ms, planned.slo_put_ms);
    observe(&report, &mut monitor, actual.object_size);
    let triggers = monitor.triggers(
        &planned,
        &initial_plan.cost,
        initial_plan.total_cost(), // billed as predicted; the drift alone should trigger
        &TriggerThresholds::default(),
    );
    assert!(
        triggers.iter().any(|t| matches!(t, ReconfigTrigger::WorkloadDrift { .. })),
        "expected a workload-drift trigger, got {triggers:?}"
    );

    // Re-plan with the observed workload; the new plan must cost less for the new reality
    // than keeping the old configuration would.
    let observed_spec = monitor.estimate(&planned);
    observed_spec.validate().unwrap();
    let new_plan = optimizer.optimize(&observed_spec).expect("feasible");
    let old_plan_on_new_workload = Plan {
        config: initial_plan.config.clone(),
        cost: legostore::optimizer::cost::cost_of(&model, &observed_spec, &initial_plan.config),
        worst_get_latency_ms: initial_plan.worst_get_latency_ms,
        worst_put_latency_ms: initial_plan.worst_put_latency_ms,
    };
    assert!(
        new_plan.total_cost() <= old_plan_on_new_workload.total_cost() + 1e-9,
        "re-planned {} vs stale {}",
        new_plan.total_cost(),
        old_plan_on_new_workload.total_cost()
    );

    // Cost/benefit rule: with a multi-hour stability horizon, moving a 2 KB object is
    // obviously worth it whenever there are real savings.
    let decision = should_reconfigure(
        &model,
        &old_plan_on_new_workload,
        &new_plan,
        observed_spec.object_size,
        1,
        GcpLocation::LosAngeles.dc(),
        24.0,
        0.25,
    );
    if new_plan.total_cost() < old_plan_on_new_workload.total_cost() * 0.95 {
        assert!(decision.should_move(), "{decision:?}");
    }

    // Execute the move in the simulator under live traffic: nothing is lost.
    let mut sim = Simulation::new(model);
    sim.create_key("k", initial_plan.config.clone(), &Value::filler(2048));
    let mut gen = TraceGenerator::new(actual.clone(), 1, 23);
    sim.schedule_trace(&gen.generate(20_000.0), 0.0, |_| "k".to_string());
    sim.schedule_reconfig(10_000.0, "k", new_plan.config.clone());
    let report = sim.run();
    assert_eq!(report.failures(), 0);
    assert_eq!(report.reconfig_durations_ms.len(), 1);
    assert!(report.reconfig_durations_ms[0] < 2000.0);
}

#[test]
fn stable_workload_does_not_trigger_or_move() {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());
    let mut planned = WorkloadSpec::example();
    planned.object_size = 1024;
    planned.read_ratio = 0.9;
    planned.arrival_rate = 100.0;
    planned.client_distribution = vec![(GcpLocation::Oregon.dc(), 1.0)];
    let plan = optimizer.optimize(&planned).expect("feasible");

    let report = run_phase(&plan.config, &planned, 20_000.0, 31);
    let mut monitor = WorkloadMonitor::new(60_000.0, planned.slo_get_ms, planned.slo_put_ms);
    observe(&report, &mut monitor, planned.object_size);
    let triggers = monitor.triggers(
        &planned,
        &plan.cost,
        plan.total_cost(),
        &TriggerThresholds::default(),
    );
    assert!(triggers.is_empty(), "stable workload must not trigger: {triggers:?}");

    // And even if we force a re-plan, the §3.4 rule declines to move for negligible savings.
    let replanned = optimizer.optimize(&monitor.estimate(&planned)).expect("feasible");
    let decision = should_reconfigure(
        &model,
        &plan,
        &replanned,
        planned.object_size,
        1_000_000,
        GcpLocation::LosAngeles.dc(),
        0.5,
        0.5,
    );
    if (plan.total_cost() - replanned.total_cost()).abs() < 1e-3 {
        assert!(!decision.should_move(), "{decision:?}");
    }
}
