//! Placement planner: use LEGOStore's optimizer as a standalone tool to decide, for a set
//! of workload profiles, whether to replicate (ABD) or erasure-code (CAS), which data
//! centers to use, and what it will cost — and compare against the paper's baselines.
//!
//! Run with:
//! ```text
//! cargo run --release --example placement_planner
//! ```

use legostore::prelude::*;

fn profile(
    model: &CloudModel,
    name: &str,
    dist: ClientDistribution,
    object_size: u64,
    read_ratio: f64,
    slo_ms: f64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        object_size,
        metadata_size: 100,
        read_ratio,
        arrival_rate: 200.0,
        total_data_bytes: 1 << 40, // 1 TiB of data with this profile
        client_distribution: client_distribution(dist, model),
        slo_get_ms: slo_ms,
        slo_put_ms: slo_ms,
        fault_tolerance: 1,
    }
}

fn main() {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());

    let profiles = vec![
        profile(&model, "session-cache (Tokyo, read-heavy, relaxed SLO)", ClientDistribution::Tokyo, 1024, 0.97, 1000.0),
        profile(&model, "shopping-cart (Sydney+Tokyo, mixed, 400 ms SLO)", ClientDistribution::SydneyTokyo, 4096, 0.5, 400.0),
        profile(&model, "telemetry (LA+Oregon, write-heavy, relaxed SLO)", ClientDistribution::LosAngelesOregon, 10 * 1024, 1.0 / 31.0, 1000.0),
        profile(&model, "global-feed (uniform users, read-heavy, 750 ms SLO)", ClientDistribution::Uniform, 10 * 1024, 0.97, 750.0),
        profile(&model, "checkout (Sydney+Singapore, mixed, 200 ms SLO)", ClientDistribution::SydneySingapore, 1024, 0.5, 200.0),
    ];

    for spec in &profiles {
        println!("\n=== {} ===", spec.name);
        match optimizer.optimize(spec) {
            None => {
                println!("  no configuration can meet the {} ms SLO", spec.slo_get_ms);
                continue;
            }
            Some(plan) => {
                let dcs: Vec<&str> = plan
                    .config
                    .dcs
                    .iter()
                    .map(|d| model.dc(*d).name.as_str())
                    .collect();
                println!(
                    "  optimizer : {:9} over {:?}",
                    plan.config.describe(),
                    dcs
                );
                println!(
                    "              ${:.4}/h (GET n/w {:.4}, PUT n/w {:.4}, storage {:.4}, VM {:.4})",
                    plan.total_cost(),
                    plan.cost.get_network,
                    plan.cost.put_network,
                    plan.cost.storage,
                    plan.cost.vm
                );
                println!(
                    "              worst-case GET {:.0} ms, PUT {:.0} ms",
                    plan.worst_get_latency_ms, plan.worst_put_latency_ms
                );
                // How much would the paper's baselines pay for the same workload?
                for baseline in Baseline::ALL {
                    match evaluate_baseline(&model, spec, baseline) {
                        Some(b) => println!(
                            "  {:18}: {:9} ${:.4}/h ({:+.0}% vs optimizer)",
                            baseline.label(),
                            b.config.describe(),
                            b.total_cost(),
                            (b.total_cost() / plan.total_cost() - 1.0) * 100.0
                        ),
                        None => println!("  {:18}: infeasible under this SLO", baseline.label()),
                    }
                }
            }
        }
    }
}
