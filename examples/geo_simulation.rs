//! Geo-distribution what-if study on the deterministic simulator: run the same read-heavy
//! workload under the optimizer's ABD plan and its CAS plan, replay a data-center failure
//! and a live reconfiguration, and compare measured latencies and metered network cost.
//!
//! Run with:
//! ```text
//! cargo run --release --example geo_simulation
//! ```

use legostore::prelude::*;

fn simulate(
    model: &CloudModel,
    plan: &Plan,
    spec: &WorkloadSpec,
    duration_ms: f64,
    fail_dc: Option<DcId>,
) -> SimReport {
    let mut sim = Simulation::with_options(model.clone(), SimOptions::default());
    sim.create_key("object", plan.config.clone(), &Value::filler(spec.object_size as usize));
    let mut gen = TraceGenerator::new(spec.clone(), 1, 2024);
    sim.schedule_trace(&gen.generate(duration_ms), 0.0, |_| "object".to_string());
    if let Some(dc) = fail_dc {
        sim.schedule_failure(duration_ms / 2.0, dc);
    }
    sim.run()
}

fn main() {
    let model = CloudModel::gcp9();
    let mut spec = WorkloadSpec::example();
    spec.object_size = 4096;
    spec.read_ratio = 0.9;
    spec.arrival_rate = 80.0;
    spec.client_distribution = client_distribution(ClientDistribution::SydneyTokyo, &model);
    spec.slo_get_ms = 1000.0;
    spec.slo_put_ms = 1000.0;

    let abd = Optimizer::new(model.clone())
        .optimize_filtered(&spec, ProtocolFilter::AbdOnly)
        .expect("ABD plan");
    let cas = Optimizer::new(model.clone())
        .optimize_filtered(&spec, ProtocolFilter::CasOnly)
        .expect("CAS plan");

    println!("workload: 4 KB objects, 90% reads, 80 req/s from Sydney+Tokyo, 1 s SLO, f=1\n");
    for (label, plan) in [("ABD plan", &abd), ("CAS plan", &cas)] {
        let report = simulate(&model, plan, &spec, 60_000.0, None);
        let get = report.latency(Some(OpKind::Get), None, None, None);
        let put = report.latency(Some(OpKind::Put), None, None, None);
        println!(
            "{label}: {:9}  predicted ${:.4}/h | measured n/w cost over 1 min ${:.6} | GET avg {:.0} ms p99 {:.0} ms | PUT avg {:.0} ms p99 {:.0} ms | optimized GETs {:.0}%",
            plan.config.describe(),
            plan.total_cost(),
            report.cost.total(),
            get.mean_ms,
            get.p99_ms,
            put.mean_ms,
            put.p99_ms,
            report.optimized_get_fraction() * 100.0
        );
    }

    // Failure study: kill one of the CAS plan's quorum members halfway through.
    let victim = cas.config.dcs[0];
    let report = simulate(&model, &cas, &spec, 60_000.0, Some(victim));
    let before = report.latency(None, None, None, Some(30_000.0));
    let after = report.latency(None, None, Some(30_000.0), None);
    println!(
        "\nfailure study: {} fails at t=30 s under the CAS plan",
        model.dc(victim).name
    );
    println!(
        "  before: avg {:.0} ms p99 {:.0} ms | after: avg {:.0} ms p99 {:.0} ms | failed ops {}",
        before.mean_ms, before.p99_ms, after.mean_ms, after.p99_ms, report.failures()
    );

    // Reconfiguration study: migrate from the ABD plan to the CAS plan mid-run.
    let mut sim = Simulation::with_options(model.clone(), SimOptions::default());
    sim.create_key("object", abd.config.clone(), &Value::filler(4096));
    let mut gen = TraceGenerator::new(spec.clone(), 1, 7);
    sim.schedule_trace(&gen.generate(60_000.0), 0.0, |_| "object".to_string());
    sim.schedule_reconfig(30_000.0, "object", cas.config.clone());
    let report = sim.run();
    println!("\nlive reconfiguration ABD -> CAS at t=30 s:");
    println!(
        "  transfer completed in {:.0} ms; {} of {} operations were failed over and retried; 0 lost: {}",
        report.reconfig_durations_ms.first().copied().unwrap_or(f64::NAN),
        report.operations.iter().filter(|o| o.reconfig_retries > 0).count(),
        report.operations.len(),
        report.failures() == 0
    );
}
