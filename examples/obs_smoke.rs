//! Observability smoke: an instrumented workload on both transports, scraped stats,
//! one JSON artifact.
//!
//! Runs the same small CAS workload twice — on the in-process channel transport under
//! the virtual clock, and on the TCP loopback transport (one server thread per gcp9 DC
//! behind a real listener) — with `ObsConfig::Metrics` enabled, then scrapes
//! `Cluster::stats()` from each deployment. For the TCP mode that scrape travels as
//! `StatsRequest`/`StatsReply` wire frames over the data sockets. Both results are
//! written as one JSON document so CI's `obs-smoke` job can validate the metrics
//! schema and archive the snapshot:
//!
//! ```text
//! cargo run --release --example obs_smoke -- --out obs_snapshot.json
//! ```

use legostore::prelude::*;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

/// 8 PUT + 8 GET of an 8 KiB value against a CAS(5, 3) key from Tokyo, then a scrape.
fn workload(cluster: &Cluster) -> ClusterStats {
    let key = Key::from("obs-smoke");
    let near = GcpLocation::Tokyo.dc();
    let placement: Vec<DcId> =
        cluster.model().nearest_dcs(near).into_iter().take(5).collect();
    cluster.install_key(
        key.clone(),
        Configuration::cas_default(placement, 3, 1),
        &Value::filler(8 * 1024),
    );
    let mut client = cluster.client(near);
    for _ in 0..8 {
        client.put(&key, Value::filler(8 * 1024)).expect("put");
        client.get(&key).expect("get");
    }
    cluster.stats().expect("scrape stats")
}

/// Renders one deployment's scrape as `{"client": ..., "servers": {"<dc>": ...}}`.
fn stats_json(stats: &ClusterStats) -> String {
    let mut out = String::from("{\"client\": ");
    out.push_str(&stats.client.to_json());
    out.push_str(", \"servers\": {");
    for (i, (dc, snap)) in stats.servers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{dc}\": "));
        out.push_str(&snap.to_json());
    }
    out.push_str("}}");
    out
}

fn main() {
    let mut out_path = "OBS_SNAPSHOT.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out requires a value"),
            other => {
                eprintln!("unknown argument: {other}\nusage: obs_smoke [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    // Mode 1: in-process transport, virtual clock — the scrape rides the server queues.
    let inproc = {
        let cluster = Cluster::gcp9(ClusterOptions {
            clock: Clock::virtual_time(),
            obs: ObsConfig::Metrics,
            ..Default::default()
        });
        let stats = workload(&cluster);
        cluster.shutdown();
        stats
    };
    eprintln!(
        "inproc: {} client ops, {} server requests across {} DCs",
        inproc.client.counter("client.put.ops") + inproc.client.counter("client.get.ops"),
        inproc.servers.values().map(|s| s.counter("server.requests")).sum::<u64>(),
        inproc.servers.len(),
    );

    // Mode 2: TCP loopback — per-DC server threads behind real sockets; the scrape is
    // a StatsRequest frame per DC and each snapshot returns as a StatsReply frame.
    let tcp = {
        let model = CloudModel::gcp9();
        let mut addrs: HashMap<DcId, SocketAddr> = HashMap::new();
        let mut servers: Vec<JoinHandle<std::io::Result<()>>> = Vec::new();
        for dc in model.dc_ids() {
            let (addr, handle) = spawn_server_thread(dc).expect("spawn server thread");
            addrs.insert(dc, addr);
            servers.push(handle);
        }
        let cluster = Cluster::connect_tcp(
            model,
            ClusterOptions {
                latency_scale: 0.01,
                op_timeout: Duration::from_secs(5),
                obs: ObsConfig::Metrics,
                ..Default::default()
            },
            &addrs,
        )
        .expect("connect tcp");
        let stats = workload(&cluster);
        cluster.shutdown();
        for handle in servers {
            handle.join().expect("join server thread").expect("server exits cleanly");
        }
        stats
    };
    eprintln!(
        "tcp-loopback: {} client ops, {} server requests across {} DCs",
        tcp.client.counter("client.put.ops") + tcp.client.counter("client.get.ops"),
        tcp.servers.values().map(|s| s.counter("server.requests")).sum::<u64>(),
        tcp.servers.len(),
    );

    let doc = format!(
        "{{\n\"inproc\": {},\n\"tcp_loopback\": {}\n}}\n",
        stats_json(&inproc),
        stats_json(&tcp),
    );
    std::fs::write(&out_path, doc).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
