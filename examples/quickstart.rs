//! Quickstart: spin up an in-process geo-distributed LEGOStore, write and read a key from
//! clients in different continents, then let the optimizer move the key to a cheaper
//! erasure-coded configuration — all while the recorded history stays linearizable.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use legostore::prelude::*;

fn main() {
    // One server thread per GCP region of the paper; inter-DC latencies are injected from
    // the measured RTT table, scaled down 50x so the example finishes quickly.
    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 0.02,
        ..Default::default()
    });

    let tokyo = GcpLocation::Tokyo.dc();
    let london = GcpLocation::London.dc();
    let mut tokyo_client = cluster.client(tokyo);
    let mut london_client = cluster.client(london);

    // CREATE installs the key with the default configuration: ABD replication over the
    // three DCs nearest to the creating client.
    let key = Key::from("user:42:profile");
    tokyo_client
        .create(&key, Value::from("{\"name\": \"Ada\", \"plan\": \"free\"}"))
        .expect("create");
    println!(
        "created {key} with configuration {}",
        cluster.metadata_config(&key).unwrap().describe()
    );

    // Linearizable GET/PUT from anywhere in the world.
    let v = london_client.get(&key).expect("get from London");
    println!("London read : {}", String::from_utf8_lossy(v.as_bytes()));
    london_client
        .put(&key, Value::from("{\"name\": \"Ada\", \"plan\": \"pro\"}"))
        .expect("put from London");
    let v = tokyo_client.get(&key).expect("get from Tokyo");
    println!("Tokyo read  : {}", String::from_utf8_lossy(v.as_bytes()));

    // Ask the optimizer for the cheapest configuration for this key's (read-heavy, Tokyo +
    // London) workload, then migrate the key to it with the reconfiguration protocol.
    let mut spec = WorkloadSpec::example();
    spec.object_size = 64;
    spec.read_ratio = 0.95;
    spec.arrival_rate = 120.0;
    spec.client_distribution = vec![(tokyo, 0.5), (london, 0.5)];
    spec.slo_get_ms = 1000.0;
    spec.slo_put_ms = 1000.0;
    let plan = Optimizer::new(CloudModel::gcp9())
        .optimize(&spec)
        .expect("a feasible plan exists at a 1 s SLO");
    println!(
        "optimizer recommends {} at ${:.4}/hour (worst-case GET {:.0} ms, PUT {:.0} ms)",
        plan.config.describe(),
        plan.total_cost(),
        plan.worst_get_latency_ms,
        plan.worst_put_latency_ms
    );

    let took = cluster
        .reconfigure(key.clone(), plan.config.clone())
        .expect("reconfiguration succeeds");
    println!(
        "reconfigured to {} in {:.0?} (scaled time)",
        cluster.metadata_config(&key).unwrap().describe(),
        took
    );

    // The value survived the migration and every recorded operation is linearizable.
    let v = tokyo_client.get(&key).expect("get after reconfiguration");
    println!("after move  : {}", String::from_utf8_lossy(v.as_bytes()));
    let failures = cluster.recorder().check_all();
    println!(
        "linearizability check over {} operations: {}",
        cluster.recorder().len(key.as_str()),
        if failures.is_empty() { "OK" } else { "FAILED" }
    );
    cluster.shutdown();
}
