//! Dynamic reconfiguration on the live (threaded) store: a key starts replicated near its
//! initial users, the workload shifts to another continent and becomes read-heavier, the
//! cost/benefit analysis of §3.4 decides whether to move, and the reconfiguration protocol
//! migrates the key while clients keep issuing operations from both locations.
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_reconfiguration
//! ```

use legostore::optimizer::latency::meets_slo;
use legostore::optimizer::reconfig_analysis::should_reconfigure;
use legostore::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn workload(
    model: &CloudModel,
    clients: Vec<(DcId, f64)>,
    read_ratio: f64,
    slo_ms: f64,
) -> WorkloadSpec {
    let _ = model;
    WorkloadSpec {
        name: "session-store".into(),
        object_size: 2048,
        metadata_size: 100,
        read_ratio,
        arrival_rate: 600.0,
        total_data_bytes: 20 * (1 << 30),
        client_distribution: clients,
        slo_get_ms: slo_ms,
        slo_put_ms: slo_ms,
        fault_tolerance: 1,
    }
}

fn main() {
    let model = CloudModel::gcp9();
    let optimizer = Optimizer::new(model.clone());
    let frankfurt = GcpLocation::Frankfurt.dc();
    let london = GcpLocation::London.dc();
    let tokyo = GcpLocation::Tokyo.dc();
    let singapore = GcpLocation::Singapore.dc();

    // Phase 1: European users, mixed read/write, relaxed 900 ms SLO.
    let europe = workload(&model, vec![(frankfurt, 0.6), (london, 0.4)], 0.5, 900.0);
    let initial_plan = optimizer.optimize(&europe).expect("feasible");
    println!(
        "initial plan for European traffic: {} at ${:.4}/h",
        initial_plan.config.describe(),
        initial_plan.total_cost()
    );

    let cluster = Cluster::gcp9(ClusterOptions {
        latency_scale: 0.01,
        ..Default::default()
    });
    let key = Key::from("session:eu-42");
    cluster.install_key(key.clone(), initial_plan.config.clone(), &Value::filler(2048));

    // Background writer in Frankfurt keeps updating the session while we reconfigure.
    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = stop.clone();
    let mut writer = cluster.client(frankfurt);
    let writer_key = key.clone();
    let writer_thread = std::thread::spawn(move || {
        let mut version = 0u64;
        while !writer_stop.load(Ordering::Relaxed) {
            version += 1;
            let value = Value::from(format!("session-state-v{version}").as_str());
            if writer.put(&writer_key, value).is_err() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        version
    });

    // Phase 2: the workload shifts to Asia and becomes read-heavy. (Give the background
    // writer a moment to produce a history worth migrating.)
    std::thread::sleep(std::time::Duration::from_millis(200));
    // The shifted traffic also demands a tighter 500 ms SLO.
    let asia = workload(&model, vec![(tokyo, 0.5), (singapore, 0.5)], 0.95, 500.0);
    let new_plan = optimizer.optimize(&asia).expect("feasible");
    println!(
        "plan for the shifted (Asian, read-heavy) traffic: {} at ${:.4}/h",
        new_plan.config.describe(),
        new_plan.total_cost()
    );

    // §3.4 cost/benefit rule: is the move worth it if the new pattern lasts a day?
    let decision = should_reconfigure(
        &model,
        &initial_plan,
        &new_plan,
        2048,
        1_000_000, // a million sessions share this profile
        GcpLocation::LosAngeles.dc(),
        24.0,
        0.25,
    );
    println!("cost/benefit decision: {decision:?}");

    // SLO maintenance is sacrosanct (§3.4): if the old placement cannot meet the shifted
    // workload's SLO we reconfigure regardless of the dollar calculus.
    let old_meets_new_slo = meets_slo(&model, &asia, &initial_plan.config);
    println!("does the old configuration meet the new 500 ms SLO? {old_meets_new_slo}");

    if decision.should_move() || !old_meets_new_slo {
        let reason = if old_meets_new_slo { "cost savings" } else { "SLO violations" };
        let took = cluster
            .reconfigure(key.clone(), new_plan.config.clone())
            .expect("reconfiguration succeeds");
        println!(
            "reconfigured to {} (reason: {reason}) in {:?} while writes kept flowing",
            cluster.metadata_config(&key).unwrap().describe(),
            took
        );
    } else {
        println!("keeping the existing configuration (savings do not justify the transfer)");
    }

    stop.store(true, Ordering::Relaxed);
    let writes = writer_thread.join().expect("writer thread");
    let mut reader = cluster.client(tokyo);
    let final_value = reader.get(&key).expect("read after migration");
    println!(
        "writer completed {writes} PUTs; Tokyo reads: {}",
        String::from_utf8_lossy(final_value.as_bytes())
    );

    let failures = cluster.recorder().check_all();
    println!(
        "linearizability over {} recorded operations: {}",
        cluster.recorder().len(key.as_str()),
        if failures.is_empty() { "OK" } else { "VIOLATED" }
    );
    cluster.shutdown();
}
