//! Multi-process deployment: six LEGOStore data centers as six real OS processes.
//!
//! Each child process is the `legostore-server` binary serving one DC over TCP; this
//! driver connects to all six with `Cluster::connect_tcp`, installs an ABD-replicated
//! key and an erasure-coded CAS key, runs a cross-continent PUT/GET workload over real
//! sockets, verifies the recorded history is linearizable, and shuts every server down
//! cleanly (each child must exit with a success status).
//!
//! Run with:
//! ```text
//! cargo build --release -p legostore-server
//! cargo run --release --example multi_process
//! ```
//!
//! The modeled geo-latencies (a six-DC slice of the paper's GCP table) are injected on
//! top of the real loopback sockets, scaled down 50x so the example finishes quickly.

use legostore::prelude::*;
use legostore_server::find_server_binary;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const NUM_DCS: usize = 6;

/// A six-DC slice of the gcp9 model: same names, same measured RTT matrix.
fn gcp6() -> CloudModel {
    let full = CloudModel::gcp9();
    let dcs: Vec<DataCenter> = (0..NUM_DCS)
        .map(|i| full.dc(DcId::from(i)).clone())
        .collect();
    let rtt: Vec<Vec<f64>> = (0..NUM_DCS)
        .map(|i| {
            (0..NUM_DCS)
                .map(|j| full.rtt_ms(DcId::from(i), DcId::from(j)))
                .collect()
        })
        .collect();
    let price: Vec<Vec<f64>> = (0..NUM_DCS)
        .map(|i| {
            (0..NUM_DCS)
                .map(|j| full.net_price_gb(DcId::from(i), DcId::from(j)))
                .collect()
        })
        .collect();
    CloudModelBuilder::from_parts(dcs, rtt, price).build()
}

/// Spawns one `legostore-server` process for `dc` and parses its `READY <addr>` line.
fn launch(bin: &std::path::Path, dc: DcId) -> (Child, SocketAddr) {
    let mut child = Command::new(bin)
        .args(["--dc", &dc.0.to_string(), "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn legostore-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read READY handshake");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected handshake line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

fn main() {
    let Some(bin) = find_server_binary() else {
        eprintln!("legostore-server binary not found.");
        eprintln!("Build it first: cargo build --release -p legostore-server");
        eprintln!("(or point LEGOSTORE_SERVER_BIN at it)");
        std::process::exit(1);
    };

    let model = gcp6();
    let mut children = Vec::new();
    let mut addrs: HashMap<DcId, SocketAddr> = HashMap::new();
    for dc in model.dc_ids() {
        let (child, addr) = launch(&bin, dc);
        println!("{:<16} -> pid {:>6} listening on {addr}", model.dc(dc).name, child.id());
        addrs.insert(dc, addr);
        children.push(child);
    }

    let options = ClusterOptions {
        latency_scale: 0.02,
        op_timeout: Duration::from_secs(2),
        controller_dc: DcId(0),
        ..Default::default()
    };
    let cluster = Cluster::connect_tcp(model, options, &addrs).expect("connect to all servers");

    // One replicated key, one erasure-coded key — both served by the child processes.
    let abd_key = Key::from("session:alice");
    let cas_key = Key::from("blob:report.pdf");
    cluster.install_key(
        abd_key.clone(),
        Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1),
        &Value::from("logged-out"),
    );
    cluster.install_key(
        cas_key.clone(),
        Configuration::cas_default(vec![DcId(0), DcId(1), DcId(2), DcId(3), DcId(4)], 3, 1),
        &Value::filler(4096),
    );

    let mut near = cluster.client(DcId(0));
    let mut far = cluster.client(DcId(5));
    near.put(&abd_key, Value::from("logged-in")).expect("ABD put");
    let v = far.get(&abd_key).expect("ABD get from the far DC");
    println!("ABD read across the ocean: {}", String::from_utf8_lossy(v.as_bytes()));
    far.put(&cas_key, Value::filler(8192)).expect("CAS put");
    let v = near.get(&cas_key).expect("CAS get back");
    println!("CAS read back {} bytes (erasure-coded over 5 DCs, k=3)", v.len());
    for i in 0..10u32 {
        near.put(&abd_key, Value::from(format!("seq-{i}").as_str())).expect("put");
        let got = far.get(&abd_key).expect("get");
        assert_eq!(got, Value::from(format!("seq-{i}").as_str()));
    }

    let failures = cluster.recorder().check_all();
    assert!(failures.is_empty(), "history not linearizable: {failures:?}");
    println!(
        "linearizability check over {} recorded operations: OK",
        cluster.recorder().len(abd_key.as_str()) + cluster.recorder().len(cas_key.as_str())
    );

    // Shutdown frames terminate every server process; insist on clean exits.
    cluster.shutdown();
    for mut child in children {
        let status = child.wait().expect("wait for server process");
        assert!(status.success(), "server process exited with {status}");
    }
    println!("all {NUM_DCS} server processes exited cleanly");
}
