//! Minimal API-compatible subset of `criterion` for offline builds.
//!
//! Provides the macro/struct surface the workspace's ten bench targets use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time`, and
//! [`black_box`] — with "measurement" reduced to a single timed run printed to
//! stdout. There are no statistics, plots, or baselines; `cargo bench --no-run`
//! compiles everything and `cargo bench` completes in one pass per benchmark.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one closure invocation and prints the result.
pub struct Bencher {
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `f` once under a wall-clock timer (the real criterion runs it many times).
    ///
    /// # Offline-shim caveat
    ///
    /// One pass means no warm-up, no sampling and no outlier rejection: the printed
    /// number is a smoke-test signal, not a measurement. The paper's timing figures
    /// (Figures 1–5, 11, 14) need the real `criterion` — a one-line swap in the root
    /// `Cargo.toml` when crates.io access is available, see `shims/README.md`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.last = Some(start.elapsed());
    }
}

/// Shim benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of benchmarks (shim: configuration methods are accepted and ignored).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim always runs one sample.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.as_ref()), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher { last: None };
    f(&mut b);
    match b.last {
        Some(d) => println!("bench {id:<50} {d:>12.3?} (single sample, shim criterion)"),
        None => println!("bench {id:<50} (no b.iter call)"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("inner", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
