//! Minimal API-compatible subset of the `bytes` crate for offline builds.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer backed by `Arc<[u8]>` plus a
//! `[start, end)` window. Cloning bumps a refcount; no byte data is copied. [`Bytes::slice`]
//! returns a narrowed view sharing the same allocation. This mirrors the two properties the
//! workspace relies on: the quorum protocols hand one `Bytes` handle per replica / per
//! codeword symbol without duplicating the payload, and the erasure encoder carves all `n`
//! codeword symbols out of a single contiguous encode buffer without copying.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (a view into a shared allocation).
///
/// The storage is `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that `Bytes::from(Vec<u8>)`
/// is zero-copy (mirroring the real crate): adopting a `Vec` allocates only the small Arc
/// header instead of copying the payload into a fresh slice allocation — which, for
/// buffers past the allocator's mmap threshold, also costs a page-fault storm per call.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

/// Shared empty storage so [`Bytes::new`] never allocates.
static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        let data = Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())));
        Bytes { data, start: 0, end: 0 }
    }

    /// Copies `src` into a freshly allocated buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` for the given range **without copying**: the returned
    /// `Bytes` shares the same allocation. Panics if the range is out of bounds, matching
    /// the real crate's behavior.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not be greater than end");
        assert!(end <= len, "range end out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn conversions_and_eq() {
        let s = Bytes::from("hi");
        assert_eq!(s, *b"hi".as_slice());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from(vec![b'a', 0x00])), "b\"a\\x00\"");
    }

    #[test]
    fn slice_shares_allocation_and_narrows() {
        let a = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = a.slice(8..24);
        assert!(Arc::ptr_eq(&a.data, &mid.data));
        assert_eq!(mid.len(), 16);
        assert_eq!(&mid[..], &(8u8..24).collect::<Vec<u8>>()[..]);
        // Slicing a slice composes the offsets.
        let inner = mid.slice(4..=7);
        assert!(Arc::ptr_eq(&a.data, &inner.data));
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
        // Degenerate and unbounded ranges.
        assert!(a.slice(5..5).is_empty());
        assert_eq!(a.slice(..).len(), 32);
        assert_eq!(a.slice(30..).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from(vec![0u8; 4]).slice(2..9);
    }

    #[test]
    fn equality_respects_the_window() {
        let a = Bytes::from(vec![9u8, 1, 2, 9]);
        let b = a.slice(1..3);
        assert_eq!(b, *[1u8, 2].as_slice());
        assert_eq!(format!("{b:?}"), "b\"\\x01\\x02\"");
        assert_eq!(b.to_vec(), vec![1, 2]);
        assert_eq!(b.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
