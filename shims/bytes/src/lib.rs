//! Minimal API-compatible subset of the `bytes` crate for offline builds.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer backed by `Arc<[u8]>`.
//! Cloning bumps a refcount; no byte data is copied. This mirrors the property the
//! workspace relies on: the quorum protocols hand one `Bytes` handle per replica /
//! per codeword symbol without duplicating the payload.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies `src` into a freshly allocated buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: Arc::from(src) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &self.data[..] == other.as_bytes()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn conversions_and_eq() {
        let s = Bytes::from("hi");
        assert_eq!(s, *b"hi".as_slice());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from(vec![b'a', 0x00])), "b\"a\\x00\"");
    }
}
