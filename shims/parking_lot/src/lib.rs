//! Minimal API-compatible subset of `parking_lot` for offline builds.
//!
//! [`Mutex`] and [`RwLock`] wrap their `std::sync` counterparts and expose the
//! parking_lot signatures: `lock()` / `read()` / `write()` return guards directly,
//! with no poisoning `Result`. A poisoned std lock (a panic while holding the guard)
//! is recovered into its inner state, matching parking_lot's "no poisoning" model.

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` never fails (parking_lot signature over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
