//! Minimal API-compatible subset of `proptest` for offline builds.
//!
//! Supports the subset of the `proptest!` DSL this workspace's tests use:
//!
//! * `proptest! { #[test] fn name(x in strategy, y: Type) { body } ... }`
//! * a leading `#![proptest_config(ProptestConfig::with_cases(n))]`
//! * range strategies (`0u64..100`), `any::<T>()`, and `proptest::collection::vec`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//!
//! Unlike the real proptest there is **no shrinking** and no persisted failure
//! seeds: each case is drawn from a deterministic per-case SplitMix64 seed, so a
//! failing case reproduces exactly on re-run (the case index is printed by the
//! panic location). That trade keeps the shim small while preserving the
//! "hundreds of random cases, reproducible on failure" property the tests want.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Per-`proptest!`-block configuration (shim: only `cases`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps offline test runs brisk
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values (shim: sampling only, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical random generator (`x: Type` params and `any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw one value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    /// The strategy generating any value of `T` (API twin of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions that run their body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                // Deterministic per-case seed: failures reproduce without any state file.
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        0x5EED_CA5Eu64 ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                $crate::__proptest_bind! { __rng; $($params)* }
                { $body }
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:ident in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $pat:ident in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:ident : $ty:ty, $($rest:tt)*) => {
        let $pat = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $pat:ident : $ty:ty) => {
        let $pat = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
}

/// `assert!` twin usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` twin usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` twin usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($msg:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 5u64..10, y: u8, v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!((5..10).contains(&x));
            let _ = y;
            prop_assert!(v.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_and_assume(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
