//! Minimal API-compatible subset of `rand` 0.8 for offline builds.
//!
//! Deterministic and seedable: [`rngs::StdRng`] is a SplitMix64 generator (Steele,
//! Lea & Flood 2014), *not* the real `StdRng` (ChaCha12) — identical seeds give a
//! different stream than upstream `rand`, but the stream is stable across runs,
//! platforms and rebuilds, which is the property the workload generators and
//! property tests rely on.

#![forbid(unsafe_code)]

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// # Offline-shim caveat
    ///
    /// This is **not** the real `rand::rngs::StdRng` (ChaCha12): the same seed produces
    /// a different stream than upstream `rand`, so any test or experiment that hardcodes
    /// expected draws encodes *this shim's* stream. The golden fingerprints in
    /// `crates/workload/tests/determinism.rs` pin it; if you swap this shim for the real
    /// crate (one line in the root `Cargo.toml`, see `shims/README.md`) or change the
    /// algorithm here, those fingerprints must be recomputed. Paper-facing results that
    /// depend on trace content, not just trace shape, should note which stream produced
    /// them.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: one additive state step + two xor-shift-multiply mixes.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (shim: only `seed_from_u64`, the constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a standard-distribution type (`u8..u64`, `usize`, `bool`,
    /// `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (what `rng.gen::<T>()` draws).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(a..b)` / `(a..=b)`).
pub trait SampleRange<T> {
    /// Draw one value from `rng` within the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (shim: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
