//! Minimal API-compatible subset of `serde` for offline builds.
//!
//! Provides the four core traits with the method surface this workspace actually
//! exercises (manual `with = "module"` helpers that serialize byte buffers), plus the
//! `derive` feature re-exporting the shim derive macros. No type in the workspace
//! implements [`Serializer`] or [`Deserializer`], so serialization is type-checked but
//! never executed — exactly what an offline build needs.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A data-format serializer (shim: enough surface for manual impls to type-check).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serialize a byte buffer.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserializer (shim: enough surface for manual impls to type-check).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool(self) -> Result<bool, Self::Error>;
    /// Deserialize an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for [u8] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
