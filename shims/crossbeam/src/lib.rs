//! Minimal API-compatible subset of `crossbeam` for offline builds.
//!
//! Only `crossbeam::channel`'s unbounded MPSC surface is provided, implemented directly
//! on `std::sync::mpsc`. The semantics the workspace relies on — `Sender: Clone + Send`,
//! blocking `recv`, `try_recv`, `recv_timeout`, receiver disconnection on drop of all
//! senders — hold identically for the std channel. (Crossbeam's `select!` and bounded
//! channels are not provided; nothing here uses them.)

#![forbid(unsafe_code)]

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7usize).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
