//! Offline shim for `serde_derive`.
//!
//! The derive macros accept the same invocation sites as the real crate — including
//! `#[serde(...)]` helper attributes on the type and its fields — but expand to nothing.
//! Nothing in this workspace serializes through serde today (there is no serde_json or
//! bincode in the dependency tree), so trait impls are not required for any bound; the
//! derives keep the data model annotated and ready for the real serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with `#[serde(...)]` helper attributes) and expands
/// to nothing; see the crate docs for why that is sufficient offline.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with `#[serde(...)]` helper attributes) and expands
/// to nothing; see the crate docs for why that is sufficient offline.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
