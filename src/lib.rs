//! # LEGOStore
//!
//! A reproduction, as a Rust library, of **"LEGOStore: A Linearizable Geo-Distributed Store
//! Combining Replication and Erasure Coding"** (VLDB 2022): a linearizable key-value store
//! that, per key, chooses between the replication-based ABD protocol and the erasure-coded
//! CAS protocol, places quorums across public-cloud data centers with a cost optimizer, and
//! migrates keys between configurations with an agile, provably linearizable
//! reconfiguration protocol.
//!
//! This crate is a thin facade over the workspace's focused crates:
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`types`] | `legostore-types` | Keys, values, tags, configurations, errors |
//! | [`erasure`] | `legostore-erasure` | GF(2^8) Reed–Solomon codec |
//! | [`cloud`] | `legostore-cloud` | The 9-DC GCP model (RTTs, prices) and custom topologies |
//! | [`proto`] | `legostore-proto` | ABD / CAS / reconfiguration protocol state machines |
//! | [`obs`] | `legostore-obs` | Telemetry: lock-light metrics, phase spans, flight recorder |
//! | [`store`] | `legostore-core` | The runnable store: transports, clients, controller |
//! | [`server`] | `legostore-server` | Standalone per-DC TCP server (`legostore-server` binary) |
//! | [`optimizer`] | `legostore-optimizer` | Cost model, placement search, baselines, Kopt |
//! | [`sim`] | `legostore-sim` | Deterministic geo-distributed simulator with cost metering |
//! | [`workload`] | `legostore-workload` | Workload grid, Poisson traces, Wikipedia-like trace |
//! | [`lincheck`] | `legostore-lincheck` | Linearizability checker for recorded histories |
//! | [`campaign`] | `legostore-campaign` | Tiered seeded scenario sweeps with deterministic reports |
//!
//! ## Quickstart
//!
//! ```
//! use legostore::prelude::*;
//!
//! // An in-process deployment spanning the paper's nine GCP regions (latencies scaled
//! // down so the example runs fast).
//! let cluster = Cluster::gcp9(ClusterOptions { latency_scale: 0.001, ..Default::default() });
//! let mut client = cluster.client(GcpLocation::Tokyo.dc());
//!
//! let key = Key::from("greeting");
//! client.create(&key, Value::from("hello geo-distributed world")).unwrap();
//! assert_eq!(client.get(&key).unwrap(), Value::from("hello geo-distributed world"));
//!
//! // Ask the optimizer for a cheaper configuration for this key's workload ...
//! let optimizer = Optimizer::new(CloudModel::gcp9());
//! let mut spec = WorkloadSpec::example();
//! spec.client_distribution = vec![(GcpLocation::Tokyo.dc(), 1.0)];
//! let plan = optimizer.optimize(&spec).expect("feasible");
//!
//! // ... and migrate the key to it without losing linearizability.
//! cluster.reconfigure(key.clone(), plan.config.clone()).unwrap();
//! assert_eq!(client.get(&key).unwrap(), Value::from("hello geo-distributed world"));
//! assert!(cluster.recorder().check_all().is_empty());
//! ```
//!
//! ## Going multi-process
//!
//! The same deployment can run as one OS process per data center: start the
//! `legostore-server` binary per DC and connect with [`store::Cluster::connect_tcp`],
//! which speaks the length-prefixed wire protocol of [`proto::wire`] over real TCP
//! sockets. See `examples/multi_process.rs` and the "Transport" section of
//! `ARCHITECTURE.md`.

pub use legostore_campaign as campaign;
pub use legostore_cloud as cloud;
pub use legostore_core as store;
pub use legostore_erasure as erasure;
pub use legostore_lincheck as lincheck;
pub use legostore_obs as obs;
pub use legostore_optimizer as optimizer;
pub use legostore_proto as proto;
pub use legostore_server as server;
pub use legostore_sim as sim;
pub use legostore_types as types;
pub use legostore_workload as workload;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use legostore_cloud::{CloudModel, CloudModelBuilder, DataCenter, GcpLocation};
    pub use legostore_core::{Clock, Cluster, ClusterOptions, ClusterStats, StoreClient};
    pub use legostore_obs::{MetricsSnapshot, Obs, ObsConfig};
    pub use legostore_server::{find_server_binary, spawn_server_thread};
    pub use legostore_lincheck::{CheckOutcome, History, HistoryRecorder};
    pub use legostore_optimizer::{
        baselines::{evaluate_baseline, Baseline},
        search::{Objective, Optimizer, ProtocolFilter, SearchOptions},
        Plan,
    };
    pub use legostore_sim::{SimOptions, SimReport, Simulation};
    pub use legostore_types::{
        ClientId, ConfigEpoch, Configuration, DcId, Key, OpKind, ProtocolKind, QuorumId,
        StoreError, StoreResult, Tag, Value,
    };
    pub use legostore_workload::{
        basic_workloads, client_distribution, ClientDistribution, ReadRatio, TraceGenerator,
        WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let model = CloudModel::gcp9();
        assert_eq!(model.num_dcs(), 9);
        let spec = WorkloadSpec::example();
        spec.validate().unwrap();
        let config = Configuration::abd_majority(vec![DcId(0), DcId(1), DcId(2)], 1);
        config.validate().unwrap();
        assert_eq!(ProtocolKind::Cas.put_phases(), 3);
    }
}
